#include "net/tcp.hpp"

#include <algorithm>

#include "net/stack.hpp"
#include "util/logging.hpp"

namespace ipop::net {

const char* tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpSocket::TcpSocket(Stack* stack, TcpConfig cfg) : stack_(stack), cfg_(cfg) {
  rto_ = cfg_.initial_rto;
}

TcpSocket::~TcpSocket() {
  // Timers hold only the event id; cancel defensively.
  if (stack_ != nullptr) {
    if (retransmit_timer_ != 0) stack_->loop().cancel(retransmit_timer_);
    if (persist_timer_ != 0) stack_->loop().cancel(persist_timer_);
    if (time_wait_timer_ != 0) stack_->loop().cancel(time_wait_timer_);
  }
}

void TcpSocket::detach() {
  if (stack_ != nullptr) {
    if (retransmit_timer_ != 0) stack_->loop().cancel(retransmit_timer_);
    if (persist_timer_ != 0) stack_->loop().cancel(persist_timer_);
    if (time_wait_timer_ != 0) stack_->loop().cancel(time_wait_timer_);
    retransmit_timer_ = persist_timer_ = time_wait_timer_ = 0;
  }
  stack_ = nullptr;
  pending_listener_ = nullptr;
  // Dead state: every user-facing entry point (send/close/abort) becomes
  // a no-op rather than dereferencing the destroyed stack.
  state_ = TcpState::kClosed;
  closed_notified_ = true;
  on_connected = nullptr;
  on_readable = nullptr;
  on_writable = nullptr;
  on_closed = nullptr;
}

std::size_t TcpSocket::send_space() const {
  return cfg_.send_buf - std::min(cfg_.send_buf, send_queue_.size());
}

std::size_t TcpSocket::flight_size() const { return snd_nxt_ - snd_una_; }

std::uint16_t TcpSocket::advertised_window() const {
  const std::size_t space =
      cfg_.recv_buf - std::min(cfg_.recv_buf, recv_ready_.size());
  return static_cast<std::uint16_t>(std::min<std::size_t>(space, 65535));
}

// ---------------------------------------------------------------------------
// Connection setup
// ---------------------------------------------------------------------------

void TcpSocket::start_connect(Ipv4Address dst, std::uint16_t dst_port,
                              Ipv4Address src, std::uint16_t src_port) {
  local_ip_ = src;
  local_port_ = src_port;
  remote_ip_ = dst;
  remote_port_ = dst_port;
  iss_ = static_cast<std::uint32_t>(stack_->rng()());
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  ssthresh_ = 64 * 1024 * 1024;  // effectively unbounded until first loss
  cwnd_ = 2 * cfg_.mss;
  state_ = TcpState::kSynSent;
  syn_attempts_ = 1;
  TcpFlags syn;
  syn.syn = true;
  rtt_timing_ = true;
  rtt_seq_ = iss_;
  rtt_sent_at_ = stack_->loop().now();
  emit_segment(iss_, {}, syn);
  arm_retransmit();
}

void TcpSocket::start_accept(Ipv4Address local, std::uint16_t local_port,
                             Ipv4Address remote, std::uint16_t remote_port,
                             const TcpSegment& syn, TcpListener* listener) {
  local_ip_ = local;
  local_port_ = local_port;
  remote_ip_ = remote;
  remote_port_ = remote_port;
  pending_listener_ = listener;
  iss_ = static_cast<std::uint32_t>(stack_->rng()());
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  rcv_nxt_ = syn.seq + 1;
  snd_wnd_ = syn.window;
  ssthresh_ = 64 * 1024 * 1024;
  cwnd_ = 2 * cfg_.mss;
  state_ = TcpState::kSynRcvd;
  TcpFlags synack;
  synack.syn = true;
  synack.ack = true;
  emit_segment(iss_, {}, synack);
  arm_retransmit();
}

void TcpSocket::enter_established() {
  state_ = TcpState::kEstablished;
  cancel_retransmit();
  dup_acks_ = 0;
}

// ---------------------------------------------------------------------------
// Segment input
// ---------------------------------------------------------------------------

void TcpSocket::on_segment(const TcpSegment& seg) {
  auto self = shared_from_this();  // keep alive through close paths
  ++stats_.segments_received;

  if (seg.flags.rst) {
    if (state_ == TcpState::kSynSent) {
      if (seg.flags.ack && seg.ack == iss_ + 1) {
        become_closed("connection refused");
      }
      return;
    }
    // Acceptable if in the receive window (simplified check).
    if (seq_ge(seg.seq, rcv_nxt_)) become_closed("connection reset");
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
      return;

    case TcpState::kSynSent: {
      if (seg.flags.ack && seg.ack != iss_ + 1) {
        send_rst(seg.ack, 0, false);
        return;
      }
      if (seg.flags.syn && seg.flags.ack) {
        snd_una_ = seg.ack;
        rcv_nxt_ = seg.seq + 1;
        snd_wnd_ = seg.window;
        if (rtt_timing_) {
          sample_rtt(stack_->loop().now() - rtt_sent_at_);
          rtt_timing_ = false;
        }
        enter_established();
        send_ack_now();
        if (on_connected) on_connected();
        output();
      } else if (seg.flags.syn) {
        // Simultaneous open.
        rcv_nxt_ = seg.seq + 1;
        snd_wnd_ = seg.window;
        state_ = TcpState::kSynRcvd;
        TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        emit_segment(iss_, {}, synack);
        arm_retransmit();
      }
      return;
    }

    case TcpState::kSynRcvd: {
      if (seg.flags.syn && !seg.flags.ack) {
        // Retransmitted SYN: re-answer.
        TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        emit_segment(iss_, {}, synack);
        return;
      }
      if (seg.flags.ack && seg.ack == iss_ + 1) {
        snd_una_ = seg.ack;
        snd_wnd_ = seg.window;
        enter_established();
        if (pending_listener_ != nullptr) {
          auto* listener = pending_listener_;
          pending_listener_ = nullptr;
          listener->connection_ready(self);
        }
        if (on_connected) on_connected();
        // Fall through to data processing of this same segment.
        process_data(seg);
        output();
      }
      return;
    }

    case TcpState::kTimeWait:
      // Peer retransmitted its FIN: re-ack it.
      if (seg.flags.fin) send_ack_now();
      return;

    default:
      break;
  }

  // Data-carrying states.
  process_ack(seg);
  if (state_ == TcpState::kClosed) return;  // ack processing may close
  process_data(seg);
  if (state_ == TcpState::kClosed) return;
  output();
}

void TcpSocket::process_ack(const TcpSegment& seg) {
  if (!seg.flags.ack) return;
  const std::uint32_t ack = seg.ack;

  if (seq_gt(ack, snd_nxt_)) {
    send_ack_now();  // ack for data we have not sent
    return;
  }

  if (seq_le(ack, snd_una_)) {
    // Possible duplicate ack.
    if (ack == snd_una_ && seg.payload.empty() && !seg.flags.fin &&
        flight_size() > 0) {
      ++dup_acks_;
      ++stats_.dup_acks_received;
      snd_wnd_ = seg.window;
      if (!in_recovery_ && dup_acks_ == 3) {
        ssthresh_ = std::max(flight_size() / 2, 2 * cfg_.mss);
        recover_ = snd_nxt_;
        in_recovery_ = true;
        ++stats_.fast_retransmits;
        retransmit_front();
        cwnd_ = ssthresh_ + 3 * cfg_.mss;
        arm_retransmit();
      } else if (in_recovery_) {
        cwnd_ += cfg_.mss;  // window inflation
        output();
      }
    } else {
      snd_wnd_ = seg.window;
    }
    return;
  }

  // New data acknowledged.
  std::uint32_t acked = ack - snd_una_;
  bool fin_now_acked = false;
  if (fin_sent_ && seq_gt(ack, fin_seq_)) {
    acked -= 1;
    fin_now_acked = true;
  }
  if (acked > send_queue_.size()) acked = static_cast<std::uint32_t>(send_queue_.size());
  send_queue_.drop_front(acked);
  snd_una_ = ack;
  snd_wnd_ = seg.window;
  backoff_ = 0;

  if (rtt_timing_ && seq_gt(ack, rtt_seq_)) {
    sample_rtt(stack_->loop().now() - rtt_sent_at_);
    rtt_timing_ = false;
  }

  if (in_recovery_) {
    if (seq_ge(ack, recover_)) {
      // Full recovery: deflate to ssthresh.
      cwnd_ = std::max(ssthresh_, 2 * cfg_.mss);
      in_recovery_ = false;
      dup_acks_ = 0;
    } else {
      // NewReno partial ack: retransmit the next hole, deflate.
      retransmit_front();
      cwnd_ = cwnd_ > acked ? cwnd_ - acked : cfg_.mss;
      cwnd_ += cfg_.mss;
      arm_retransmit();
    }
  } else {
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += cfg_.mss;  // slow start
    } else {
      cwnd_ += std::max<std::size_t>(1, cfg_.mss * cfg_.mss / cwnd_);
    }
  }

  if (flight_size() == 0 && !(fin_sent_ && !fin_now_acked)) {
    cancel_retransmit();
  } else {
    arm_retransmit();
  }

  if (send_buf_was_full_ && send_space() > 0) {
    send_buf_was_full_ = false;
    if (on_writable) on_writable();
  }

  if (fin_now_acked) {
    fin_acked_by_us_ = true;
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        become_closed("");
        break;
      default:
        break;
    }
  }
}

void TcpSocket::process_data(const TcpSegment& seg) {
  const std::uint32_t orig_seq = seg.seq;
  const std::size_t len = seg.payload.size();

  if (len > 0) {
    std::uint32_t seq = orig_seq;
    std::span<const std::uint8_t> data(seg.payload);

    if (seq_lt(seq, rcv_nxt_)) {
      const std::uint32_t overlap = rcv_nxt_ - seq;
      if (overlap >= data.size()) {
        send_ack_now();  // entirely old data
        data = {};
      } else {
        data = data.subspan(overlap);
        seq = rcv_nxt_;
      }
    }

    if (!data.empty()) {
      if (seq_gt(seq, rcv_nxt_)) {
        // Out of order: buffer (bounded) and send a duplicate ack.
        if (ooo_bytes_ + data.size() <= cfg_.recv_buf &&
            out_of_order_.find(seq) == out_of_order_.end()) {
          out_of_order_.emplace(seq,
                                std::vector<std::uint8_t>(data.begin(), data.end()));
          ooo_bytes_ += data.size();
        }
        send_ack_now();
      } else {
        // In order: accept what fits the receive buffer.
        const std::size_t space =
            cfg_.recv_buf - std::min(cfg_.recv_buf, recv_ready_.size());
        const std::size_t take = std::min(space, data.size());
        recv_ready_.insert(recv_ready_.end(), data.begin(),
                           data.begin() + take);
        rcv_nxt_ += static_cast<std::uint32_t>(take);
        // Drain contiguous out-of-order segments.  Bytes that do not fit
        // the receive buffer are dropped unacked; the peer retransmits.
        auto it = out_of_order_.begin();
        while (it != out_of_order_.end() && seq_le(it->first, rcv_nxt_)) {
          const auto& buf = it->second;
          const std::size_t skip = rcv_nxt_ - it->first;
          if (skip < buf.size()) {
            const std::size_t room =
                cfg_.recv_buf - std::min(cfg_.recv_buf, recv_ready_.size());
            const std::size_t add = std::min(room, buf.size() - skip);
            recv_ready_.insert(recv_ready_.end(), buf.begin() + skip,
                               buf.begin() + skip + add);
            rcv_nxt_ += static_cast<std::uint32_t>(add);
          }
          ooo_bytes_ -= buf.size();
          it = out_of_order_.erase(it);
        }
        stats_.bytes_received += take;
        send_ack_now();
        if (take > 0 && on_readable) on_readable();
      }
    }
  }

  if (seg.flags.fin) {
    const std::uint32_t fin_pos = orig_seq + static_cast<std::uint32_t>(len);
    if (fin_pos == rcv_nxt_ && !fin_received_) {
      fin_received_ = true;
      rcv_nxt_ += 1;
      send_ack_now();
      switch (state_) {
        case TcpState::kEstablished:
          state_ = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          state_ = fin_acked_by_us_ ? TcpState::kTimeWait : TcpState::kClosing;
          if (state_ == TcpState::kTimeWait) enter_time_wait();
          break;
        case TcpState::kFinWait2:
          enter_time_wait();
          break;
        default:
          break;
      }
      if (on_readable) on_readable();  // EOF became observable
    } else if (seq_lt(fin_pos, rcv_nxt_)) {
      send_ack_now();  // duplicate FIN
    }
    // Out-of-order FIN: wait for retransmission of the gap.
  }
}

void TcpSocket::handle_frag_needed(std::size_t next_hop_mtu) {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;
  if (next_hop_mtu < 68 || next_hop_mtu > 65535) {
    // Old-style router that reports no MTU: fall back to the RFC 1191
    // default plateau.
    next_hop_mtu = 576;
  }
  // Clamp to a sane floor *before* the staleness check: if the floor
  // means the MSS cannot actually shrink, bail out entirely — reacting
  // anyway would retransmit an unsendable segment on every ICMP error
  // (an unthrottled livelock; the RTO path must own that case).
  const std::size_t new_mss = std::max<std::size_t>(
      next_hop_mtu - Ipv4Header::kSize - TcpSegment::kHeaderSize, 64);
  if (new_mss >= cfg_.mss) return;  // stale, bogus, or already at floor
  cfg_.mss = new_mss;
  ++stats_.pmtu_shrinks;
  // The oversized segment was dropped in the network, not by congestion:
  // resend it at the new size immediately, leaving cwnd/ssthresh alone.
  // Karn's rule: never time a retransmitted range.
  rtt_timing_ = false;
  if (flight_size() > 0) {
    retransmit_front();
    arm_retransmit();
  }
}

// ---------------------------------------------------------------------------
// Application interface
// ---------------------------------------------------------------------------

std::size_t TcpSocket::send(std::span<const std::uint8_t> data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return 0;
  }
  if (fin_queued_) return 0;
  const std::size_t take = std::min(send_space(), data.size());
  if (take > 0) {
    // The historical owning path: one user/socket copy into a fresh
    // queue segment.
    stats_.payload_bytes_copied += take;
    // lint:allow(zero-copy): historical span-send path, counted; zero-copy callers pass Buffer/chain
    send_queue_.append(util::Buffer::copy_of(data.subspan(0, take)));
  }
  if (take < data.size()) send_buf_was_full_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    output();
  }
  return take;
}

std::size_t TcpSocket::send(util::Buffer data) {
  return send(util::BufferChain(std::move(data)));
}

std::size_t TcpSocket::send(util::BufferChain data) {
  return send_from(data);
}

std::size_t TcpSocket::send_from(util::BufferChain& chain) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return 0;
  }
  if (fin_queued_) return 0;
  const std::size_t take = std::min(send_space(), chain.size());
  if (take < chain.size()) send_buf_was_full_ = true;
  // Link shared handles into the queue — zero payload copies; a partial
  // accept links a sub-buffer share of the prefix.
  std::size_t left = take;
  for (std::size_t i = 0; i < chain.segments() && left > 0; ++i) {
    const util::Buffer& seg = chain.segment(i);
    if (left >= seg.size()) {
      send_queue_.append(seg.share());
      left -= seg.size();
    } else {
      send_queue_.append(seg.share(0, left));
      left = 0;
    }
  }
  chain.drop_front(take);
  if (take > 0 &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait)) {
    output();
  }
  return take;
}

std::vector<std::uint8_t> TcpSocket::receive(std::size_t max) {
  const std::size_t take = std::min(max, recv_ready_.size());
  std::vector<std::uint8_t> out(recv_ready_.begin(),
                                recv_ready_.begin() + take);
  const std::uint16_t before = advertised_window();
  recv_ready_.erase(recv_ready_.begin(), recv_ready_.begin() + take);
  // Window-update ack when the window reopens across an MSS boundary.
  if (state_ != TcpState::kClosed && before < cfg_.mss &&
      advertised_window() >= cfg_.mss) {
    send_ack_now();
  }
  return out;
}

void TcpSocket::close() {
  switch (state_) {
    case TcpState::kSynSent:
      become_closed("");
      return;
    case TcpState::kEstablished:
    case TcpState::kSynRcvd:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    default:
      return;  // already closing/closed
  }
  fin_queued_ = true;
  output();
}

void TcpSocket::abort() {
  if (state_ == TcpState::kClosed) return;
  send_rst(snd_nxt_, rcv_nxt_, true);
  become_closed("aborted");
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void TcpSocket::output() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }

  while (true) {
    const std::size_t in_flight = flight_size();
    const std::size_t wnd = std::min<std::size_t>(cwnd_, snd_wnd_);
    if (wnd <= in_flight) break;
    const std::size_t usable = wnd - in_flight;
    // Unsent bytes start at (snd_nxt_ - snd_una_) minus an unacked FIN's
    // sequence slot (FIN is only ever sent after all data, so when
    // fin_sent_ the queue is fully transmitted already).
    const std::size_t sent_data = fin_sent_ ? send_queue_.size() : in_flight;
    if (sent_data >= send_queue_.size()) break;
    const std::size_t avail = send_queue_.size() - sent_data;
    const std::size_t n = std::min({usable, avail, cfg_.mss});
    if (n == 0) break;
    // Nagle: while data is in flight, wait until a full MSS accumulates
    // (unless this flushes the tail ahead of a queued FIN).
    if (cfg_.nagle && n < cfg_.mss && in_flight > 0 && !fin_queued_) break;
    TcpFlags flags;
    flags.ack = true;
    flags.psh = (sent_data + n == send_queue_.size());
    if (!rtt_timing_) {
      rtt_timing_ = true;
      rtt_seq_ = snd_nxt_;
      rtt_sent_at_ = stack_->loop().now();
    }
    emit_data_segment(snd_nxt_, sent_data, n, flags);
    stats_.bytes_sent += n;
    snd_nxt_ += static_cast<std::uint32_t>(n);
    if (retransmit_timer_ == 0) arm_retransmit();
  }

  maybe_send_fin();

  // Zero-window probing.
  if (snd_wnd_ == 0 && flight_size() == 0 && !send_queue_.empty() &&
      persist_timer_ == 0) {
    arm_persist();
  }
}

void TcpSocket::maybe_send_fin() {
  if (!fin_queued_ || fin_sent_) return;
  const std::size_t in_flight = flight_size();
  if (in_flight < send_queue_.size()) return;  // data still unsent
  fin_seq_ = snd_nxt_;
  fin_sent_ = true;
  TcpFlags flags;
  flags.fin = true;
  flags.ack = true;
  emit_segment(snd_nxt_, {}, flags);
  snd_nxt_ += 1;
  arm_retransmit();
}

TcpSegment TcpSocket::make_segment(std::uint32_t seq, TcpFlags flags) {
  TcpSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = seq;
  seg.ack = flags.ack ? rcv_nxt_ : 0;
  seg.flags = flags;
  seg.window = advertised_window();
  last_advertised_window_ = seg.window;
  return seg;
}

void TcpSocket::emit_wire(util::Buffer seg_wire) {
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kTcp;
  pkt.hdr.src = local_ip_;
  pkt.hdr.dst = remote_ip_;
  pkt.payload = std::move(seg_wire);
  ++stats_.segments_sent;
  stack_->send_ip(std::move(pkt));
}

void TcpSocket::emit_segment(std::uint32_t seq,
                             std::span<const std::uint8_t> payload,
                             TcpFlags flags) {
  TcpSegment seg = make_segment(seq, flags);
  seg.payload.assign(payload.begin(), payload.end());
  emit_wire(seg.encode_buffer(local_ip_, remote_ip_, util::kPacketHeadroom));
}

void TcpSocket::emit_data_segment(std::uint32_t seq, std::size_t queue_offset,
                                  std::size_t len, TcpFlags flags) {
  TcpSegment seg = make_segment(seq, flags);
  // The queued bytes reach the wire image through one scatter-gather
  // walk (the simulated NIC's DMA descriptor pass), never through an
  // intermediate owning vector.
  stats_.payload_bytes_gathered += len;
  emit_wire(seg.encode_gather(local_ip_, remote_ip_, util::kPacketHeadroom,
                              send_queue_, queue_offset, len));
}

void TcpSocket::send_ack_now() {
  TcpFlags flags;
  flags.ack = true;
  emit_segment(snd_nxt_, {}, flags);
}

void TcpSocket::send_rst(std::uint32_t seq, std::uint32_t ack, bool with_ack) {
  TcpFlags flags;
  flags.rst = true;
  flags.ack = with_ack;
  TcpSegment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = seq;
  seg.ack = with_ack ? ack : 0;
  seg.flags = flags;
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kTcp;
  pkt.hdr.src = local_ip_;
  pkt.hdr.dst = remote_ip_;
  pkt.payload =
      seg.encode_buffer(local_ip_, remote_ip_, util::kPacketHeadroom);
  ++stats_.segments_sent;
  stack_->send_ip(std::move(pkt));
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpSocket::arm_retransmit() {
  cancel_retransmit();
  auto self = weak_from_this();
  retransmit_timer_ = stack_->loop().schedule_after(
      current_rto(), [self] {
        if (auto s = self.lock()) {
          s->retransmit_timer_ = 0;
          s->on_retransmit_timeout();
        }
      });
}

void TcpSocket::cancel_retransmit() {
  if (retransmit_timer_ != 0) {
    stack_->loop().cancel(retransmit_timer_);
    retransmit_timer_ = 0;
  }
}

void TcpSocket::on_retransmit_timeout() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;

  if (state_ == TcpState::kSynSent && ++syn_attempts_ > cfg_.syn_retries) {
    become_closed("connect timeout");
    return;
  }

  const bool anything_unacked =
      flight_size() > 0 || state_ == TcpState::kSynSent ||
      state_ == TcpState::kSynRcvd || (fin_sent_ && !fin_acked_by_us_);
  if (!anything_unacked) return;

  ++stats_.timeouts;
  ssthresh_ = std::max(flight_size() / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  in_recovery_ = false;
  dup_acks_ = 0;
  rtt_timing_ = false;  // Karn: never time retransmitted segments
  if (backoff_ < 12) ++backoff_;
  retransmit_front();
  arm_retransmit();
}

void TcpSocket::retransmit_front() {
  ++stats_.retransmits;
  if (state_ == TcpState::kSynSent) {
    TcpFlags syn;
    syn.syn = true;
    emit_segment(iss_, {}, syn);
    return;
  }
  if (state_ == TcpState::kSynRcvd) {
    TcpFlags synack;
    synack.syn = true;
    synack.ack = true;
    emit_segment(iss_, {}, synack);
    return;
  }
  // Earliest unacked data byte lives at the front of send_queue_.
  const std::size_t data_in_flight =
      fin_sent_ ? send_queue_.size() : flight_size();
  if (!send_queue_.empty() && data_in_flight > 0) {
    const std::size_t n =
        std::min({cfg_.mss, send_queue_.size(), data_in_flight});
    TcpFlags flags;
    flags.ack = true;
    flags.psh = true;
    emit_data_segment(snd_una_, 0, n, flags);
    stats_.bytes_sent += n;
    return;
  }
  if (fin_sent_ && !fin_acked_by_us_) {
    TcpFlags flags;
    flags.fin = true;
    flags.ack = true;
    emit_segment(fin_seq_, {}, flags);
  }
}

void TcpSocket::arm_persist() {
  auto self = weak_from_this();
  persist_timer_ = stack_->loop().schedule_after(
      cfg_.persist_interval, [self] {
        if (auto s = self.lock()) {
          s->persist_timer_ = 0;
          s->on_persist_timeout();
        }
      });
}

void TcpSocket::on_persist_timeout() {
  if (state_ == TcpState::kClosed) return;
  if (snd_wnd_ == 0 && !send_queue_.empty() && flight_size() == 0) {
    // Window probe: transmit one byte beyond the advertised window.  It is
    // real data (front of the queue), so it occupies sequence space and is
    // covered by the retransmission machinery.
    TcpFlags flags;
    flags.ack = true;
    emit_data_segment(snd_nxt_, 0, 1, flags);
    stats_.bytes_sent += 1;
    snd_nxt_ += 1;
    arm_retransmit();
  }
}

void TcpSocket::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  cancel_retransmit();
  auto self = weak_from_this();
  time_wait_timer_ = stack_->loop().schedule_after(
      cfg_.time_wait, [self] {
        if (auto s = self.lock()) {
          s->time_wait_timer_ = 0;
          s->become_closed("");
        }
      });
}

void TcpSocket::become_closed(const std::string& reason) {
  if (state_ == TcpState::kClosed && closed_notified_) return;
  state_ = TcpState::kClosed;
  cancel_retransmit();
  if (persist_timer_ != 0) {
    stack_->loop().cancel(persist_timer_);
    persist_timer_ = 0;
  }
  if (time_wait_timer_ != 0) {
    stack_->loop().cancel(time_wait_timer_);
    time_wait_timer_ = 0;
  }
  auto self = shared_from_this();
  stack_->tcp_unregister(
      Stack::TcpKey{local_ip_, local_port_, remote_ip_, remote_port_});
  if (!closed_notified_) {
    closed_notified_ = true;
    if (on_closed) on_closed(reason);
  }
}

// ---------------------------------------------------------------------------
// RTT estimation (Jacobson/Karn)
// ---------------------------------------------------------------------------

void TcpSocket::sample_rtt(Duration rtt) {
  if (!srtt_valid_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    srtt_valid_ = true;
  } else {
    const auto err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = (rttvar_ * 3 + err) / 4;
    srtt_ = (srtt_ * 7 + rtt) / 8;
  }
  rto_ = srtt_ + std::max<Duration>(4 * rttvar_, util::milliseconds(10));
}

Duration TcpSocket::current_rto() const {
  Duration base = srtt_valid_ ? rto_ : cfg_.initial_rto;
  for (int i = 0; i < backoff_; ++i) {
    base *= 2;
    if (base >= cfg_.max_rto) break;
  }
  return std::clamp(base, cfg_.min_rto, cfg_.max_rto);
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

void TcpListener::handle_syn(Ipv4Address dst_ip, const TcpSegment& syn,
                             Ipv4Address src) {
  // Clamp MSS to the path back toward the client.
  TcpConfig cfg = cfg_;
  const Route* route = stack_->lookup_route(src);
  if (route != nullptr) {
    const std::size_t mtu = stack_->ifaces_[route->iface]->cfg.mtu;
    cfg.mss = std::min(cfg.mss,
                       mtu - Ipv4Header::kSize - TcpSegment::kHeaderSize);
  }
  auto sock = std::shared_ptr<TcpSocket>(new TcpSocket(stack_, cfg));
  stack_->tcp_register(
      Stack::TcpKey{dst_ip, port_, src, syn.src_port}, sock);
  sock->start_accept(dst_ip, port_, src, syn.src_port, syn, this);
}

void TcpListener::connection_ready(std::shared_ptr<TcpSocket> sock) {
  if (handler_) handler_(std::move(sock));
}

void TcpListener::close() {
  if (stack_ != nullptr) {
    stack_->tcp_listeners_.erase(port_);
    stack_ = nullptr;
  }
}

}  // namespace ipop::net
