#include "net/l4_patch.hpp"

#include "net/icmp.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"

namespace ipop::net {

namespace {

/// Accumulates 16-bit word substitutions into a transport checksum.
/// Inactive for UDP's "no checksum" sentinel (0 stays 0 on the wire).
struct ChecksumPatcher {
  std::uint16_t csum = 0;
  bool active = false;

  void sub16(std::uint16_t old_word, std::uint16_t new_word) {
    if (active) csum = checksum_update(csum, old_word, new_word);
  }
  void sub32(std::uint32_t old_val, std::uint32_t new_val) {
    sub16(static_cast<std::uint16_t>(old_val >> 16),
          static_cast<std::uint16_t>(new_val >> 16));
    sub16(static_cast<std::uint16_t>(old_val),
          static_cast<std::uint16_t>(new_val));
  }
};

/// Shared UDP/TCP port rewrite: both carry src/dst ports in the first two
/// 16-bit words and a pseudo-header checksum covering the IP addresses.
void patch_ports(Ipv4Packet& pkt, ChecksumPatcher& cp,
                 std::size_t src_port_offset, std::size_t dst_port_offset,
                 const std::optional<L4Endpoint>& new_src,
                 const std::optional<L4Endpoint>& new_dst) {
  if (new_src) {
    cp.sub32(pkt.hdr.src.value, new_src->ip.value);
    cp.sub16(util::load_u16(pkt.payload.data() + src_port_offset),
             new_src->port);
    pkt.payload.patch_u16(src_port_offset, new_src->port);
  }
  if (new_dst) {
    cp.sub32(pkt.hdr.dst.value, new_dst->ip.value);
    cp.sub16(util::load_u16(pkt.payload.data() + dst_port_offset),
             new_dst->port);
    pkt.payload.patch_u16(dst_port_offset, new_dst->port);
  }
}

}  // namespace

std::optional<std::pair<L4Endpoint, L4Endpoint>> l4_endpoints_of(
    const Ipv4Packet& pkt) {
  try {
    switch (pkt.hdr.proto) {
      case IpProto::kUdp: {
        auto v = UdpView::parse(pkt.payload.view());
        return {{L4Endpoint{pkt.hdr.src, v.src_port},
                 L4Endpoint{pkt.hdr.dst, v.dst_port}}};
      }
      case IpProto::kTcp: {
        auto v = TcpView::parse(pkt.payload.view());
        return {{L4Endpoint{pkt.hdr.src, v.src_port},
                 L4Endpoint{pkt.hdr.dst, v.dst_port}}};
      }
      case IpProto::kIcmp: {
        auto v = IcmpView::parse_headers(pkt.payload.view());
        if (!v.is_echo()) return std::nullopt;
        return {{L4Endpoint{pkt.hdr.src, v.id},
                 L4Endpoint{pkt.hdr.dst, v.id}}};
      }
    }
  } catch (const util::ParseError&) {
  }
  return std::nullopt;
}

std::optional<IcmpQuoteView> parse_ipv4_quote(util::BufferView bytes,
                                              std::size_t base_offset) {
  try {
    util::BufferView quote = bytes.subview(base_offset);
    if (quote.size() < Ipv4Header::kSize + 8) return std::nullopt;
    util::ByteReader r(quote);
    const std::uint8_t ver_ihl = r.u8();
    if (ver_ihl != 0x45) return std::nullopt;  // options / not IPv4
    r.u8();   // tos
    r.u16();  // total length (covers bytes the quote truncated away)
    r.u16();  // id
    r.u16();  // flags/fragment
    r.u8();   // ttl
    const auto proto = static_cast<IpProto>(r.u8());
    r.u16();  // quoted header checksum: patched, never validated, here
    IcmpQuoteView q;
    q.proto = proto;
    q.src_ip = Ipv4Address(r.u32());
    q.dst_ip = Ipv4Address(r.u32());
    q.ip_offset = base_offset;
    q.l4_offset = base_offset + Ipv4Header::kSize;
    q.l4_len = quote.size() - Ipv4Header::kSize;
    util::BufferView l4 = quote.subview(Ipv4Header::kSize);
    switch (proto) {
      case IpProto::kUdp:
      case IpProto::kTcp: {
        util::ByteReader lr(l4);
        q.src = L4Endpoint{q.src_ip, lr.u16()};
        q.dst = L4Endpoint{q.dst_ip, lr.u16()};
        return q;
      }
      case IpProto::kIcmp: {
        // Only quoted echo queries map back to a tracked flow (errors are
        // never generated about errors); the id sits in both slots, like
        // l4_endpoints_of.
        const auto t = static_cast<IcmpType>(l4[0]);
        if (t != IcmpType::kEchoRequest && t != IcmpType::kEchoReply) {
          return std::nullopt;
        }
        const std::uint16_t id = util::load_u16(l4.data() + IcmpView::kIdOffset);
        q.src = L4Endpoint{q.src_ip, id};
        q.dst = L4Endpoint{q.dst_ip, id};
        return q;
      }
    }
  } catch (const util::ParseError&) {
  }
  return std::nullopt;
}

std::optional<IcmpQuoteView> icmp_error_quote(const Ipv4Packet& pkt) {
  if (pkt.hdr.proto != IpProto::kIcmp) return std::nullopt;
  try {
    IcmpView v = IcmpView::parse_headers(pkt.payload.view());
    if (!v.is_error()) return std::nullopt;
    return parse_ipv4_quote(pkt.payload.view(), IcmpView::kQuoteOffset);
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

std::size_t patch_icmp_quote_endpoint(Ipv4Packet& pkt, const IcmpQuoteView& q,
                                      bool src_side, const L4Endpoint& repl,
                                      std::optional<Ipv4Address> new_outer_src,
                                      std::optional<Ipv4Address> new_outer_dst) {
  std::size_t copied = 0;
  if (pkt.payload.use_count() > 1) {
    // Copy-on-write: another handle (a flooded frame, a queued
    // retransmit) still reads the original bytes.
    copied = pkt.payload.size();
    // lint:allow(zero-copy): explicit COW before an in-place rewrite of shared storage (counted)
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);
  }
  util::Buffer& b = pkt.payload;
  // Every 16-bit word rewritten inside the ICMP message is folded into
  // the outer ICMP checksum, which covers the whole quote.
  ChecksumPatcher outer{util::load_u16(b.data() + IcmpView::kChecksumOffset),
                        true};
  auto patch_word = [&](std::size_t off, std::uint16_t v) {
    outer.sub16(util::load_u16(b.data() + off), v);
    b.patch_u16(off, v);
  };

  const Ipv4Address old_ip = src_side ? q.src_ip : q.dst_ip;
  const std::uint16_t old_port = src_side ? q.src.port : q.dst.port;
  const std::size_t addr_off = q.ip_offset + (src_side ? 12 : 16);
  const bool ip_changed = repl.ip != old_ip;
  const bool port_changed = repl.port != old_port;

  if (ip_changed) {
    // Quoted IP header: address words plus the quoted header checksum.
    const std::size_t ip_csum_off = q.ip_offset + 10;
    ChecksumPatcher inner_ip{util::load_u16(b.data() + ip_csum_off), true};
    inner_ip.sub32(old_ip.value, repl.ip.value);
    patch_word(addr_off, static_cast<std::uint16_t>(repl.ip.value >> 16));
    patch_word(addr_off + 2, static_cast<std::uint16_t>(repl.ip.value));
    patch_word(ip_csum_off, inner_ip.csum);
  }

  switch (q.proto) {
    case IpProto::kUdp:
    case IpProto::kTcp: {
      const std::size_t port_off = q.l4_offset + (src_side ? 0 : 2);
      if (port_changed) patch_word(port_off, repl.port);
      // The quoted transport checksum (pseudo-header + ports) is only
      // present when the 8-byte quote reaches it: always for UDP
      // (offset 6), only for untruncated TCP quotes (offset 16).
      const bool quoted_csum_present =
          q.proto == IpProto::kUdp ? q.l4_len >= 8 : q.l4_len >= 18;
      if (quoted_csum_present && (ip_changed || port_changed)) {
        const std::size_t csum_off =
            q.l4_offset + (q.proto == IpProto::kUdp ? UdpView::kChecksumOffset
                                                    : TcpView::kChecksumOffset);
        const std::uint16_t old_csum = util::load_u16(b.data() + csum_off);
        // RFC 768: a zero UDP checksum means "not computed" — it must
        // cross the rewrite as zero, not as an incremental update of 0.
        if (!(q.proto == IpProto::kUdp && old_csum == 0)) {
          ChecksumPatcher l4csum{old_csum, true};
          if (ip_changed) l4csum.sub32(old_ip.value, repl.ip.value);
          if (port_changed) l4csum.sub16(old_port, repl.port);
          std::uint16_t v = l4csum.csum;
          if (q.proto == IpProto::kUdp && v == 0) v = 0xFFFF;
          patch_word(csum_off, v);
        }
      }
      break;
    }
    case IpProto::kIcmp: {
      // Quoted echo: the id swap touches the quoted ICMP checksum (no
      // pseudo-header, so the address change costs nothing).
      if (port_changed) {
        const std::size_t id_off = q.l4_offset + IcmpView::kIdOffset;
        const std::size_t csum_off = q.l4_offset + IcmpView::kChecksumOffset;
        ChecksumPatcher inner{util::load_u16(b.data() + csum_off), true};
        inner.sub16(old_port, repl.port);
        patch_word(id_off, repl.port);
        patch_word(csum_off, inner.csum);
      }
      break;
    }
  }

  b.patch_u16(IcmpView::kChecksumOffset, outer.csum);
  if (new_outer_src) pkt.hdr.src = *new_outer_src;
  if (new_outer_dst) pkt.hdr.dst = *new_outer_dst;
  return copied;
}

std::size_t patch_l4_endpoints(Ipv4Packet& pkt,
                               std::optional<L4Endpoint> new_src,
                               std::optional<L4Endpoint> new_dst) {
  if (!new_src && !new_dst) return 0;
  std::size_t copied = 0;
  if (pkt.payload.use_count() > 1) {
    // Copy-on-write: another handle (a flooded frame, a queued
    // retransmit) still reads the original bytes.
    copied = pkt.payload.size();
    // lint:allow(zero-copy): explicit COW before an in-place rewrite of shared storage (counted)
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);
  }
  switch (pkt.hdr.proto) {
    case IpProto::kUdp: {
      UdpView v = UdpView::parse(pkt.payload.view());
      ChecksumPatcher cp{v.checksum, v.checksum != 0};
      patch_ports(pkt, cp, UdpView::kSrcPortOffset, UdpView::kDstPortOffset,
                  new_src, new_dst);
      if (cp.active) {
        pkt.payload.patch_u16(UdpView::kChecksumOffset,
                              cp.csum == 0 ? 0xFFFF : cp.csum);
      }
      break;
    }
    case IpProto::kTcp: {
      TcpView v = TcpView::parse(pkt.payload.view());
      ChecksumPatcher cp{v.checksum, true};
      patch_ports(pkt, cp, TcpView::kSrcPortOffset, TcpView::kDstPortOffset,
                  new_src, new_dst);
      pkt.payload.patch_u16(TcpView::kChecksumOffset, cp.csum);
      break;
    }
    case IpProto::kIcmp: {
      // Structural parse: a middlebox neither validates nor re-sums the
      // endpoint-owned checksum — the id swap is one incremental update.
      IcmpView v = IcmpView::parse_headers(pkt.payload.view());
      if (!v.is_echo()) {
        throw util::ParseError("cannot rewrite non-echo ICMP");
      }
      if (new_src && new_dst) {
        // One id field cannot carry two rewrites; refusing beats
        // silently dropping one of them (twice-NAT patches at each box).
        throw util::ParseError("ICMP rewrite cannot change both endpoints");
      }
      // The ICMP checksum covers only the ICMP message (no pseudo-header),
      // so an address change costs nothing and the id swap is one update.
      ChecksumPatcher cp{
          util::load_u16(pkt.payload.data() + IcmpView::kChecksumOffset),
          true};
      const std::uint16_t new_id = new_src ? new_src->port : new_dst->port;
      cp.sub16(v.id, new_id);
      pkt.payload.patch_u16(IcmpView::kIdOffset, new_id);
      pkt.payload.patch_u16(IcmpView::kChecksumOffset, cp.csum);
      break;
    }
  }
  if (new_src) pkt.hdr.src = new_src->ip;
  if (new_dst) pkt.hdr.dst = new_dst->ip;
  return copied;
}

}  // namespace ipop::net
