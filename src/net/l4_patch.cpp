#include "net/l4_patch.hpp"

#include "net/icmp.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"

namespace ipop::net {

namespace {

/// Accumulates 16-bit word substitutions into a transport checksum.
/// Inactive for UDP's "no checksum" sentinel (0 stays 0 on the wire).
struct ChecksumPatcher {
  std::uint16_t csum = 0;
  bool active = false;

  void sub16(std::uint16_t old_word, std::uint16_t new_word) {
    if (active) csum = checksum_update(csum, old_word, new_word);
  }
  void sub32(std::uint32_t old_val, std::uint32_t new_val) {
    sub16(static_cast<std::uint16_t>(old_val >> 16),
          static_cast<std::uint16_t>(new_val >> 16));
    sub16(static_cast<std::uint16_t>(old_val),
          static_cast<std::uint16_t>(new_val));
  }
};

/// Shared UDP/TCP port rewrite: both carry src/dst ports in the first two
/// 16-bit words and a pseudo-header checksum covering the IP addresses.
void patch_ports(Ipv4Packet& pkt, ChecksumPatcher& cp,
                 std::size_t src_port_offset, std::size_t dst_port_offset,
                 const std::optional<L4Endpoint>& new_src,
                 const std::optional<L4Endpoint>& new_dst) {
  if (new_src) {
    cp.sub32(pkt.hdr.src.value, new_src->ip.value);
    cp.sub16(util::load_u16(pkt.payload.data() + src_port_offset),
             new_src->port);
    pkt.payload.patch_u16(src_port_offset, new_src->port);
  }
  if (new_dst) {
    cp.sub32(pkt.hdr.dst.value, new_dst->ip.value);
    cp.sub16(util::load_u16(pkt.payload.data() + dst_port_offset),
             new_dst->port);
    pkt.payload.patch_u16(dst_port_offset, new_dst->port);
  }
}

}  // namespace

std::optional<std::pair<L4Endpoint, L4Endpoint>> l4_endpoints_of(
    const Ipv4Packet& pkt) {
  try {
    switch (pkt.hdr.proto) {
      case IpProto::kUdp: {
        auto v = UdpView::parse(pkt.payload.view());
        return {{L4Endpoint{pkt.hdr.src, v.src_port},
                 L4Endpoint{pkt.hdr.dst, v.dst_port}}};
      }
      case IpProto::kTcp: {
        auto v = TcpView::parse(pkt.payload.view());
        return {{L4Endpoint{pkt.hdr.src, v.src_port},
                 L4Endpoint{pkt.hdr.dst, v.dst_port}}};
      }
      case IpProto::kIcmp: {
        auto v = IcmpView::parse_headers(pkt.payload.view());
        if (!v.is_echo()) return std::nullopt;
        return {{L4Endpoint{pkt.hdr.src, v.id},
                 L4Endpoint{pkt.hdr.dst, v.id}}};
      }
    }
  } catch (const util::ParseError&) {
  }
  return std::nullopt;
}

std::size_t patch_l4_endpoints(Ipv4Packet& pkt,
                               std::optional<L4Endpoint> new_src,
                               std::optional<L4Endpoint> new_dst) {
  if (!new_src && !new_dst) return 0;
  std::size_t copied = 0;
  if (pkt.payload.use_count() > 1) {
    // Copy-on-write: another handle (a flooded frame, a queued
    // retransmit) still reads the original bytes.
    copied = pkt.payload.size();
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);
  }
  switch (pkt.hdr.proto) {
    case IpProto::kUdp: {
      UdpView v = UdpView::parse(pkt.payload.view());
      ChecksumPatcher cp{v.checksum, v.checksum != 0};
      patch_ports(pkt, cp, UdpView::kSrcPortOffset, UdpView::kDstPortOffset,
                  new_src, new_dst);
      if (cp.active) {
        pkt.payload.patch_u16(UdpView::kChecksumOffset,
                              cp.csum == 0 ? 0xFFFF : cp.csum);
      }
      break;
    }
    case IpProto::kTcp: {
      TcpView v = TcpView::parse(pkt.payload.view());
      ChecksumPatcher cp{v.checksum, true};
      patch_ports(pkt, cp, TcpView::kSrcPortOffset, TcpView::kDstPortOffset,
                  new_src, new_dst);
      pkt.payload.patch_u16(TcpView::kChecksumOffset, cp.csum);
      break;
    }
    case IpProto::kIcmp: {
      // Structural parse: a middlebox neither validates nor re-sums the
      // endpoint-owned checksum — the id swap is one incremental update.
      IcmpView v = IcmpView::parse_headers(pkt.payload.view());
      if (!v.is_echo()) {
        throw util::ParseError("cannot rewrite non-echo ICMP");
      }
      if (new_src && new_dst) {
        // One id field cannot carry two rewrites; refusing beats
        // silently dropping one of them (twice-NAT patches at each box).
        throw util::ParseError("ICMP rewrite cannot change both endpoints");
      }
      // The ICMP checksum covers only the ICMP message (no pseudo-header),
      // so an address change costs nothing and the id swap is one update.
      ChecksumPatcher cp{
          util::load_u16(pkt.payload.data() + IcmpView::kChecksumOffset),
          true};
      const std::uint16_t new_id = new_src ? new_src->port : new_dst->port;
      cp.sub16(v.id, new_id);
      pkt.payload.patch_u16(IcmpView::kIdOffset, new_id);
      pkt.payload.patch_u16(IcmpView::kChecksumOffset, cp.csum);
      break;
    }
  }
  if (new_src) pkt.hdr.src = new_src->ip;
  if (new_dst) pkt.hdr.dst = new_dst->ip;
  return copied;
}

}  // namespace ipop::net
