// Stateful site firewall.
//
// Recreates the paper's testbed policy (Figure 4): VFW and LFW block all
// unsolicited inbound traffic except SSH (port 22) from one designated
// host, and LFW additionally restricts *outbound* connections to a single
// peer.  Admitted flows create connection-tracking state (shared with the
// NAT box, net/conntrack.hpp): return traffic matching that state is
// admitted, TCP entries follow the observed SYN/FIN/RST lifecycle with
// per-state timeouts, ICMP errors quoting a tracked flow are admitted as
// related traffic, and an idle sweep bounds the table.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/conntrack.hpp"
#include "net/l4_patch.hpp"
#include "net/stack.hpp"

namespace ipop::net {

struct FirewallRule {
  std::optional<IpProto> proto;        // empty: any
  std::optional<Ipv4Prefix> src;       // empty: any source
  std::optional<Ipv4Prefix> dst;       // empty: any destination
  std::optional<std::uint16_t> dst_port;

  bool matches(IpProto p, Ipv4Address s, std::uint16_t /*sp*/, Ipv4Address d,
               std::uint16_t dp) const {
    if (proto && *proto != p) return false;
    if (src && !src->contains(s)) return false;
    if (dst && !dst->contains(d)) return false;
    if (dst_port && *dst_port != dp) return false;
    return true;
  }
};

enum class FwAction { kAllow, kDeny };

struct FirewallConfig {
  /// Per-protocol / per-TCP-state conntrack entry lifetimes.
  ConntrackTimeouts timeouts;
  /// Cadence of the expiry sweep (armed lazily with the first entry).
  util::Duration sweep_interval = util::seconds(10);
};

struct FirewallStats {
  std::uint64_t allowed_out = 0;
  std::uint64_t allowed_in_established = 0;
  std::uint64_t allowed_in_rule = 0;
  /// ICMP errors admitted because their quote matched a tracked flow.
  std::uint64_t allowed_related = 0;
  std::uint64_t blocked_in = 0;
  std::uint64_t blocked_out = 0;
  /// Conntrack entries reclaimed by the idle sweep.
  std::uint64_t conntrack_expired = 0;
};

/// Shorthand for FirewallStats (the name the docs and roadmap use).
using FwStats = FirewallStats;

/// Two-interface stateful firewall router: interface 0 = inside,
/// interface 1 = outside.
class Firewall {
 public:
  Firewall(sim::EventLoop& loop, std::string name, StackConfig scfg = {},
           FirewallConfig fwcfg = {});
  ~Firewall();

  Firewall(const Firewall&) = delete;
  Firewall& operator=(const Firewall&) = delete;

  Stack& stack() { return stack_; }
  /// Re-home onto a shard loop (engine planning).
  void rebind(sim::EventLoop& loop) {
    stack_.rebind(loop);
    sweeper_.rebind(loop);
  }
  const std::string& name() const { return name_; }
  const FirewallStats& stats() const { return stats_; }
  const FirewallConfig& config() const { return fwcfg_; }

  /// Live conntrack entries (bounded by the idle sweep).
  std::size_t conntrack_count() const { return conntrack_.size(); }
  /// Drop entries idle past their conntrack budget.  Runs on a periodic
  /// timer; exposed for tests.
  void expire_idle(util::TimePoint now);

  /// Permit unsolicited inbound traffic matching the rule.  (Replies to
  /// tracked outbound flows are always admitted; everything else is
  /// denied unless a rule matches.)
  void allow_inbound(FirewallRule rule) {
    inbound_rules_.push_back(std::move(rule));
  }

  /// Outbound policy is an ordered chain: first matching rule wins, the
  /// default action applies otherwise.  This expresses the paper's LFW
  /// ("only outgoing *TCP* to F3") as
  ///   allow(tcp, dst=F3); deny(tcp); default allow.
  void add_outbound_rule(FwAction action, FirewallRule rule) {
    outbound_chain_.push_back({action, std::move(rule)});
  }
  void set_outbound_default(FwAction action) { outbound_default_ = action; }

  // Legacy conveniences.
  void set_outbound_default_allow(bool allow) {
    outbound_default_ = allow ? FwAction::kAllow : FwAction::kDeny;
  }
  void allow_outbound(FirewallRule rule) {
    add_outbound_rule(FwAction::kAllow, std::move(rule));
  }
  void deny_outbound(FirewallRule rule) {
    add_outbound_rule(FwAction::kDeny, std::move(rule));
  }

 private:
  struct FlowKey {
    IpProto proto;
    Ipv4Address a_ip;
    std::uint16_t a_port;
    Ipv4Address b_ip;
    std::uint16_t b_port;
    auto operator<=>(const FlowKey&) const = default;

    FlowKey reversed() const { return {proto, b_ip, b_port, a_ip, a_port}; }
  };

  bool filter(const Ipv4Packet& pkt, std::size_t in_if, std::size_t out_if);
  /// Related-flow admission: an ICMP error is let through when its quoted
  /// original packet belongs to a tracked flow (in either orientation).
  bool filter_icmp_error(const Ipv4Packet& pkt, bool outbound);
  /// Track one admitted packet on an existing entry: refresh last-used,
  /// advance the TCP state machine.
  void note_tracked(CtFlow& flow, const Ipv4Packet& pkt, bool from_originator);
  CtFlow& track_new(const FlowKey& key);
  static std::optional<FlowKey> flow_of(const Ipv4Packet& pkt);

  std::string name_;
  Stack stack_;
  FirewallConfig fwcfg_;
  FwAction outbound_default_ = FwAction::kAllow;
  std::vector<FirewallRule> inbound_rules_;
  std::vector<std::pair<FwAction, FirewallRule>> outbound_chain_;
  /// Keyed in originator orientation: `a` is whoever sent the packet
  /// that created the entry.
  std::map<FlowKey, CtFlow> conntrack_;
  FirewallStats stats_;
  CtSweepTimer sweeper_;
};

}  // namespace ipop::net
