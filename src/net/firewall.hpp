// Stateful site firewall.
//
// Recreates the paper's testbed policy (Figure 4): VFW and LFW block all
// unsolicited inbound traffic except SSH (port 22) from one designated
// host, and LFW additionally restricts *outbound* connections to a single
// peer.  Outbound flows create connection-tracking state; return traffic
// matching that state is admitted.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/stack.hpp"

namespace ipop::net {

struct FirewallRule {
  std::optional<IpProto> proto;        // empty: any
  std::optional<Ipv4Prefix> src;       // empty: any source
  std::optional<Ipv4Prefix> dst;       // empty: any destination
  std::optional<std::uint16_t> dst_port;

  bool matches(IpProto p, Ipv4Address s, std::uint16_t /*sp*/, Ipv4Address d,
               std::uint16_t dp) const {
    if (proto && *proto != p) return false;
    if (src && !src->contains(s)) return false;
    if (dst && !dst->contains(d)) return false;
    if (dst_port && *dst_port != dp) return false;
    return true;
  }
};

enum class FwAction { kAllow, kDeny };

struct FirewallStats {
  std::uint64_t allowed_out = 0;
  std::uint64_t allowed_in_established = 0;
  std::uint64_t allowed_in_rule = 0;
  std::uint64_t blocked_in = 0;
  std::uint64_t blocked_out = 0;
};

/// Two-interface stateful firewall router: interface 0 = inside,
/// interface 1 = outside.
class Firewall {
 public:
  Firewall(sim::EventLoop& loop, std::string name, StackConfig scfg = {});

  Stack& stack() { return stack_; }
  const std::string& name() const { return name_; }
  const FirewallStats& stats() const { return stats_; }

  /// Permit unsolicited inbound traffic matching the rule.  (Replies to
  /// tracked outbound flows are always admitted; everything else is
  /// denied unless a rule matches.)
  void allow_inbound(FirewallRule rule) {
    inbound_rules_.push_back(std::move(rule));
  }

  /// Outbound policy is an ordered chain: first matching rule wins, the
  /// default action applies otherwise.  This expresses the paper's LFW
  /// ("only outgoing *TCP* to F3") as
  ///   allow(tcp, dst=F3); deny(tcp); default allow.
  void add_outbound_rule(FwAction action, FirewallRule rule) {
    outbound_chain_.push_back({action, std::move(rule)});
  }
  void set_outbound_default(FwAction action) { outbound_default_ = action; }

  // Legacy conveniences.
  void set_outbound_default_allow(bool allow) {
    outbound_default_ = allow ? FwAction::kAllow : FwAction::kDeny;
  }
  void allow_outbound(FirewallRule rule) {
    add_outbound_rule(FwAction::kAllow, std::move(rule));
  }
  void deny_outbound(FirewallRule rule) {
    add_outbound_rule(FwAction::kDeny, std::move(rule));
  }

 private:
  struct FlowKey {
    IpProto proto;
    Ipv4Address a_ip;
    std::uint16_t a_port;
    Ipv4Address b_ip;
    std::uint16_t b_port;
    auto operator<=>(const FlowKey&) const = default;
  };

  bool filter(const Ipv4Packet& pkt, std::size_t in_if, std::size_t out_if);
  static std::optional<FlowKey> flow_of(const Ipv4Packet& pkt);

  std::string name_;
  Stack stack_;
  FwAction outbound_default_ = FwAction::kAllow;
  std::vector<FirewallRule> inbound_rules_;
  std::vector<std::pair<FwAction, FirewallRule>> outbound_chain_;
  std::set<FlowKey> conntrack_;
  FirewallStats stats_;
};

}  // namespace ipop::net
