// Connection-tracking core shared by the NAT box and the stateful
// firewall.
//
// Real middleboxes do not age every flow on one idle timer: a TCP flow's
// lifetime is read off the wire (SYN/FIN/RST), with a short budget for
// half-open handshakes and closing flows and a long one for established
// connections.  The paper's NAT-traversal argument (Section III-D) is
// property-tested against middleboxes built on this tracker, so grid
// deployments spanning scavenged desktops behind consumer NATs see the
// state machines they would hit in practice: established TCP flows
// outlive the UDP idle timer, torn-down flows release their state (and
// the NAT's external port) early.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>

#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "sim/event_loop.hpp"
#include "util/time.hpp"

namespace ipop::net {

/// Per-protocol / per-TCP-state idle budgets (netfilter-flavoured
/// defaults, scaled down to simulation-friendly values).
struct ConntrackTimeouts {
  /// Non-TCP flows age on plain idle timers.  Brunet pings idle edges
  /// every ~5 s, so live overlay flows comfortably outlive the default.
  util::Duration udp_idle = util::seconds(60);
  util::Duration icmp_idle = util::seconds(30);
  /// Half-open handshakes (SYN_SENT / SYN_RECV) are cheap to abandon.
  util::Duration tcp_syn = util::seconds(30);
  /// An established flow may sit idle for hours without dying.
  util::Duration tcp_established = util::seconds(7200);
  /// One FIN seen: the flow is closing but may still carry data.
  util::Duration tcp_fin_wait = util::seconds(120);
  /// Both FINs seen: only stray retransmits remain.
  util::Duration tcp_time_wait = util::seconds(60);
  /// RST seen: reclaim almost immediately.
  util::Duration tcp_closed = util::seconds(10);
};

/// Middlebox-observed TCP flow state (a deliberately coarser machine than
/// the endpoint's RFC 793 states: a box in the middle only sees flags).
enum class CtTcpState : std::uint8_t {
  kNone,         // no TCP flags observed yet (mid-flow pickup)
  kSynSent,      // originator SYN seen
  kSynRecv,      // replier SYN-ACK seen
  kEstablished,  // originator's handshake ACK seen
  kFinWait,      // one direction FIN'd
  kTimeWait,     // both directions FIN'd
  kClosed,       // RST seen
};

const char* ct_tcp_state_name(CtTcpState s);

/// Tracking state for one flow, embedded in the NAT's mapping table and
/// the firewall's conntrack table.  `last_used` is refreshed by traffic
/// in either direction; `timeout()` converts protocol + TCP state into
/// the applicable idle budget.
struct CtFlow {
  CtTcpState tcp = CtTcpState::kNone;
  /// FINs seen per direction: [0] = originator, [1] = replier.
  bool fin_seen[2] = {false, false};
  util::TimePoint last_used{};

  /// Advance the TCP state machine on one observed segment.
  /// `from_originator` is true for packets flowing in the direction that
  /// created the flow (outbound for a NAT mapping).
  void on_tcp_flags(const TcpFlags& f, bool from_originator);

  util::Duration timeout(IpProto proto, const ConntrackTimeouts& t) const;
  bool expired(util::TimePoint now, IpProto proto,
               const ConntrackTimeouts& t) const {
    return now - last_used > timeout(proto, t);
  }
};

/// TCP flags of `pkt`'s payload, or nullopt for non-TCP / malformed
/// segments.  Structural parse only — middleboxes must not drop on (or
/// validate) checksums the endpoints own.
std::optional<TcpFlags> tcp_flags_of(const Ipv4Packet& pkt);

/// The lazily-armed reclamation timer both middlebox conntrack tables
/// run on: armed when the owner's first entry appears, re-armed only
/// while the sweep reports entries remain, so an idle middlebox leaves
/// the event loop drainable.
class CtSweepTimer {
 public:
  /// `sweep(now)` reclaims expired entries and returns true while live
  /// entries remain (keep sweeping).
  CtSweepTimer(sim::EventLoop& loop, util::Duration interval,
               std::function<bool(util::TimePoint)> sweep)
      : loop_(&loop), interval_(interval), sweep_(std::move(sweep)) {}
  ~CtSweepTimer() {
    if (timer_ != 0) loop_->cancel(timer_);
  }

  CtSweepTimer(const CtSweepTimer&) = delete;
  CtSweepTimer& operator=(const CtSweepTimer&) = delete;

  /// Call whenever an entry is created; no-op while already armed.
  void ensure_armed() {
    if (timer_ == 0) arm();
  }

  /// Re-home onto a shard loop (engine planning).  Planning precedes all
  /// traffic, so nothing can be armed yet.
  void rebind(sim::EventLoop& loop) {
    assert(timer_ == 0 && "rebind with a sweep armed on the old loop");
    loop_ = &loop;
  }

 private:
  void arm() {
    timer_ = loop_->schedule_after(interval_, [this] {
      timer_ = 0;
      if (sweep_(loop_->now())) arm();
    });
  }

  sim::EventLoop* loop_;
  util::Duration interval_;
  std::function<bool(util::TimePoint)> sweep_;
  std::uint64_t timer_ = 0;
};

}  // namespace ipop::net
