// TCP segment codec (header + flags + checksum).
//
// Wire format only; connection state, sliding windows and Reno congestion
// control live in net/tcp.hpp.  Brunet's TCP transport mode and every
// application stream (ttcp, SSH-like exec, NFS, MPI) serialize through
// this codec — including the tunneled case where a complete inner TCP
// segment becomes the payload of an IPOP-encapsulated packet.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "util/buffer_chain.hpp"

namespace ipop::net {

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::uint8_t encode() const {
    return static_cast<std::uint8_t>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) |
                                     (rst ? 0x04 : 0) | (psh ? 0x08 : 0) |
                                     (ack ? 0x10 : 0));
  }
  static TcpFlags decode(std::uint8_t bits) {
    TcpFlags f;
    f.fin = bits & 0x01;
    f.syn = bits & 0x02;
    f.rst = bits & 0x04;
    f.psh = bits & 0x08;
    f.ack = bits & 0x10;
    return f;
  }
  std::string to_string() const;
};

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 20;  // no options

  /// Encode with a valid pseudo-header checksum.
  std::vector<std::uint8_t> encode(Ipv4Address src_ip,
                                   Ipv4Address dst_ip) const;
  /// Encode into a shared buffer with `headroom` spare front bytes so the
  /// IP and Ethernet headers prepend downstream without copying.
  util::Buffer encode_buffer(Ipv4Address src_ip, Ipv4Address dst_ip,
                             std::size_t headroom) const;
  /// Scatter-gather encode: header fields come from *this (this->payload
  /// is ignored), the payload bytes are gathered straight out of
  /// [offset, offset+len) of `queue` into the wire image — the send
  /// queue's bytes reach the segment without an intermediate owning
  /// vector.  The checksum covers the gathered bytes.
  util::Buffer encode_gather(Ipv4Address src_ip, Ipv4Address dst_ip,
                             std::size_t headroom,
                             const util::BufferChain& queue,
                             std::size_t offset, std::size_t len) const;
  /// Throws util::ParseError on truncation or checksum failure.
  static TcpSegment decode(std::span<const std::uint8_t> bytes,
                           Ipv4Address src_ip, Ipv4Address dst_ip);
};

/// Zero-copy parsed TCP header: `payload` aliases the input view.
/// Structural checks only (TcpSegment::decode validates the checksum) —
/// what middleboxes reading ports need.  Field offsets are exposed so NAT
/// can patch ports/checksum in place.
struct TcpView {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  util::BufferView payload;

  static constexpr std::size_t kSrcPortOffset = 0;
  static constexpr std::size_t kDstPortOffset = 2;
  static constexpr std::size_t kChecksumOffset = 16;

  /// Throws util::ParseError on truncation or a bad data offset.
  static TcpView parse(util::BufferView bytes);
};

/// Modular 32-bit sequence comparisons (RFC 793 style).
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

}  // namespace ipop::net
