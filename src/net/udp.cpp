#include "net/udp.hpp"

#include <algorithm>

namespace ipop::net {

void UdpDatagram::write_header(std::uint8_t* out, std::uint16_t src_port,
                               std::uint16_t dst_port,
                               std::size_t payload_len) {
  util::store_u16(out + UdpView::kSrcPortOffset, src_port);
  util::store_u16(out + UdpView::kDstPortOffset, dst_port);
  util::store_u16(out + UdpView::kLengthOffset,
                  static_cast<std::uint16_t>(kHeaderSize + payload_len));
  // Checksum: not computed (legal for IPv4).
  util::store_u16(out + UdpView::kChecksumOffset, 0);
}

std::vector<std::uint8_t> UdpDatagram::encode() const {
  std::vector<std::uint8_t> bytes(kHeaderSize + payload.size());
  write_header(bytes.data(), src_port, dst_port, payload.size());
  // lint:allow(zero-copy): legacy vector codec kept for tests; the data plane prepends into headroom
  std::copy(payload.begin(), payload.end(), bytes.begin() + kHeaderSize);
  return bytes;
}

std::vector<std::uint8_t> UdpDatagram::encode(Ipv4Address src,
                                              Ipv4Address dst) const {
  auto bytes = encode();
  std::uint16_t csum = transport_checksum(src, dst, IpProto::kUdp, bytes);
  if (csum == 0) csum = 0xFFFF;  // 0 would mean "no checksum"
  util::store_u16(bytes.data() + UdpView::kChecksumOffset, csum);
  return bytes;
}

UdpView UdpView::parse(util::BufferView bytes) {
  util::ByteReader r(bytes);
  UdpView v;
  v.src_port = r.u16();
  v.dst_port = r.u16();
  v.length = r.u16();
  if (v.length < UdpDatagram::kHeaderSize || v.length > bytes.size()) {
    throw util::ParseError("bad UDP length");
  }
  v.checksum = r.u16();
  v.payload = bytes.subview(UdpDatagram::kHeaderSize,
                            v.length - UdpDatagram::kHeaderSize);
  return v;
}

UdpDatagram UdpDatagram::decode(util::BufferView bytes, Ipv4Address src,
                                Ipv4Address dst) {
  UdpView v = UdpView::parse(bytes);
  if (v.checksum != 0 &&
      transport_checksum(src, dst, IpProto::kUdp,
                         bytes.subview(0, v.length)) != 0) {
    throw util::ParseError("bad UDP checksum");
  }
  UdpDatagram d;
  d.src_port = v.src_port;
  d.dst_port = v.dst_port;
  // lint:allow(zero-copy): legacy struct decode kept for tests; the data plane parses views
  d.payload = v.payload.to_vector();
  return d;
}

}  // namespace ipop::net
