#include "net/udp.hpp"

namespace ipop::net {

void UdpDatagram::encode_header(util::ByteWriter& w, std::uint16_t src_port,
                                std::uint16_t dst_port,
                                std::size_t payload_len) {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + payload_len));
  w.u16(0);  // checksum: not computed (legal for IPv4)
}

std::vector<std::uint8_t> UdpDatagram::encode() const {
  util::ByteWriter w(kHeaderSize + payload.size());
  encode_header(w, src_port, dst_port, payload.size());
  w.bytes(payload);
  return w.take();
}

UdpDatagram UdpDatagram::decode(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  UdpDatagram d;
  d.src_port = r.u16();
  d.dst_port = r.u16();
  const std::uint16_t len = r.u16();
  if (len < kHeaderSize || len > bytes.size()) {
    throw util::ParseError("bad UDP length");
  }
  r.u16();  // checksum ignored
  d.payload = r.bytes_copy(len - kHeaderSize);
  return d;
}

}  // namespace ipop::net
