#include "net/ethernet.hpp"

#include <algorithm>
#include <cstdio>

namespace ipop::net {

MacAddress MacAddress::from_index(std::uint64_t index) {
  // 0x02 prefix: locally administered, unicast.
  MacAddress m;
  m.octets[0] = 0x02;
  m.octets[1] = 0x1b;
  for (int i = 0; i < 4; ++i) {
    m.octets[2 + i] = static_cast<std::uint8_t>(index >> (8 * (3 - i)));
  }
  return m;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

namespace {
void write_header(std::uint8_t* out, const MacAddress& dst,
                  const MacAddress& src, EtherType type) {
  std::copy(dst.octets.begin(), dst.octets.end(), out);
  std::copy(src.octets.begin(), src.octets.end(), out + 6);
  const auto t = static_cast<std::uint16_t>(type);
  out[12] = static_cast<std::uint8_t>(t >> 8);
  out[13] = static_cast<std::uint8_t>(t);
}
}  // namespace

std::vector<std::uint8_t> EthernetFrame::encode() const {
  std::vector<std::uint8_t> out(kHeaderSize + payload.size());
  write_header(out.data(), dst, src, type);
  // lint:allow(zero-copy): legacy vector codec kept for tests; the data plane uses Buffer frames
  std::copy(payload.begin(), payload.end(), out.begin() + kHeaderSize);
  return out;
}

util::Buffer EthernetFrame::encode_buffer(std::size_t headroom) const {
  auto frame = util::Buffer::allocate(kHeaderSize + payload.size(), headroom);
  write_header(frame.data(), dst, src, type);
  // lint:allow(zero-copy): struct-form serializer (control frames); hot path prepends into headroom
  std::copy(payload.begin(), payload.end(), frame.data() + kHeaderSize);
  return frame;
}

EthernetView EthernetView::parse(util::BufferView frame) {
  util::ByteReader r(frame);
  EthernetView v;
  auto d = r.bytes(6);
  std::copy(d.begin(), d.end(), v.dst.octets.begin());
  auto s = r.bytes(6);
  std::copy(s.begin(), s.end(), v.src.octets.begin());
  v.type = static_cast<EtherType>(r.u16());
  v.payload = r.rest_view();
  return v;
}

EthernetFrame EthernetFrame::decode(util::BufferView bytes) {
  EthernetView v = EthernetView::parse(bytes);
  EthernetFrame f;
  f.dst = v.dst;
  f.src = v.src;
  f.type = v.type;
  // lint:allow(zero-copy): legacy struct decode kept for tests; the data plane parses views
  f.payload = v.payload.to_vector();
  return f;
}

util::Buffer frame_onto(util::Buffer payload, const MacAddress& dst,
                        const MacAddress& src, EtherType type) {
  auto slot = payload.grow_front(EthernetFrame::kHeaderSize);
  write_header(slot.data(), dst, src, type);
  return payload;
}

}  // namespace ipop::net
