#include "net/ethernet.hpp"

#include <cstdio>

namespace ipop::net {

MacAddress MacAddress::from_index(std::uint64_t index) {
  // 0x02 prefix: locally administered, unicast.
  MacAddress m;
  m.octets[0] = 0x02;
  m.octets[1] = 0x1b;
  for (int i = 0; i < 4; ++i) {
    m.octets[2 + i] = static_cast<std::uint8_t>(index >> (8 * (3 - i)));
  }
  return m;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::vector<std::uint8_t> EthernetFrame::encode() const {
  util::ByteWriter w(kHeaderSize + payload.size());
  w.bytes(std::span<const std::uint8_t>(dst.octets.data(), 6));
  w.bytes(std::span<const std::uint8_t>(src.octets.data(), 6));
  w.u16(static_cast<std::uint16_t>(type));
  w.bytes(payload);
  return w.take();
}

EthernetFrame Ethernet_frame_decode_impl(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  EthernetFrame f;
  auto d = r.bytes(6);
  std::copy(d.begin(), d.end(), f.dst.octets.begin());
  auto s = r.bytes(6);
  std::copy(s.begin(), s.end(), f.src.octets.begin());
  f.type = static_cast<EtherType>(r.u16());
  f.payload = r.rest_copy();
  return f;
}

EthernetFrame EthernetFrame::decode(std::span<const std::uint8_t> bytes) {
  return Ethernet_frame_decode_impl(bytes);
}

}  // namespace ipop::net
