#include "net/ttcp.hpp"

#include <vector>

namespace ipop::net {

TtcpReceiver::TtcpReceiver(Stack& stack, std::uint16_t port) : stack_(stack) {
  listener_ = stack_.tcp_listen(port);
  listener_->set_accept_handler([this](std::shared_ptr<TcpSocket> sock) {
    sock_ = std::move(sock);
    started_ = stack_.loop().now();
    sock_->on_readable = [this] { pump(); };
    sock_->on_closed = [this](const std::string& reason) {
      if (!reason.empty()) finish(/*ok=*/false);  // reset mid-transfer
    };
  });
}

void TtcpReceiver::pump() {
  while (true) {
    auto chunk = sock_->receive(64 * 1024);
    if (chunk.empty()) break;
    result_.bytes += chunk.size();
  }
  if (sock_->eof()) {
    // Elapsed measured up to the arrival of the final byte.
    sock_->close();
    finish(/*ok=*/true);
  }
}

void TtcpReceiver::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  result_.elapsed = stack_.loop().now() - started_;
  result_.ok = ok;
  if (done_) {
    auto cb = std::move(done_);
    cb(result_);
  }
}

void TtcpSender::run(Ipv4Address dst, std::uint16_t port, const Options& opts,
                     std::function<void(TtcpResult)> done) {
  opts_ = opts;
  done_ = std::move(done);
  queued_ = 0;
  sock_ = stack_.tcp_connect(dst, port, opts.tcp);
  if (!sock_) {
    if (done_) done_(TtcpResult{});
    return;
  }
  started_ = stack_.loop().now();
  sock_->on_connected = [this] { pump(); };
  sock_->on_writable = [this] { pump(); };
  sock_->on_closed = [this](const std::string& reason) {
    if (done_) {
      TtcpResult r;
      r.bytes = queued_;
      r.elapsed = stack_.loop().now() - started_;
      r.ok = reason.empty() && queued_ >= opts_.total_bytes;
      auto cb = std::move(done_);
      cb(r);
    }
  };
}

void TtcpSender::pump() {
  static const std::vector<std::uint8_t> pattern = [] {
    std::vector<std::uint8_t> v(64 * 1024);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<std::uint8_t>(i * 131);
    }
    return v;
  }();
  while (queued_ < opts_.total_bytes) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(opts_.write_chunk, opts_.total_bytes - queued_));
    const std::size_t sent = sock_->send(
        std::span<const std::uint8_t>(pattern.data(), want));
    queued_ += sent;
    if (sent < want) return;  // buffer full; resume on_writable
  }
  sock_->close();
}

}  // namespace ipop::net
