// ARP (RFC 826) message codec for IPv4 over Ethernet.
//
// On the physical substrate ARP behaves normally.  On the IPOP virtual
// interface the paper's trick applies: a static ARP entry for a fictitious
// gateway keeps all ARP traffic inside the host, so only IP packets reach
// the overlay (Section III-A).  Both behaviours use this codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ethernet.hpp"
#include "net/ipv4.hpp"

namespace ipop::net {

enum class ArpOp : std::uint16_t {
  kRequest = 1,
  kReply = 2,
};

struct ArpMessage {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  // zero in requests
  Ipv4Address target_ip;

  std::vector<std::uint8_t> encode() const;
  /// ARP is all fixed-size fields, so the view-backed parse is already
  /// copy-free; throws util::ParseError on truncation or non-Ethernet/IPv4
  /// formats.
  static ArpMessage decode(util::BufferView bytes);
};

}  // namespace ipop::net
