#include "net/ping.hpp"

#include <map>

#include "util/bytes.hpp"

namespace ipop::net {

namespace {
std::uint16_t g_next_ping_id = 1;
}  // namespace

EchoReplyHandlerChain::EchoReplyHandlerChain(Stack& stack) {
  stack.set_echo_reply_handler(
      [this](Ipv4Address /*src*/, const IcmpMessage& msg) {
        auto it = handlers_.find(msg.id);
        if (it != handlers_.end()) it->second(msg);
      });
}

EchoReplyHandlerChain& EchoReplyHandlerChain::for_stack(Stack& stack) {
  // One chain per stack *uid* for the lifetime of the process.  Keyed by
  // uid rather than address: a later simulation may allocate a new Stack
  // at a recycled address, and the stale chain would otherwise swallow
  // its echo replies.
  static std::map<std::uint64_t, std::unique_ptr<EchoReplyHandlerChain>>
      chains;
  auto& slot = chains[stack.uid()];
  if (!slot) slot.reset(new EchoReplyHandlerChain(stack));
  return *slot;
}

Pinger::Pinger(Stack& stack) : stack_(stack), id_(g_next_ping_id++) {}

Pinger::~Pinger() { EchoReplyHandlerChain::for_stack(stack_).remove(id_); }

void Pinger::run(Ipv4Address dst, const Options& opts,
                 std::function<void(PingResult)> done) {
  opts_ = opts;
  dst_ = dst;
  done_ = std::move(done);
  result_ = PingResult{};
  next_seq_ = 0;
  EchoReplyHandlerChain::for_stack(stack_).add(
      id_, [this](const IcmpMessage& msg) { on_reply(msg); });
  send_next();
}

void Pinger::send_next() {
  if (next_seq_ >= opts_.count) {
    stack_.loop().schedule_after(opts_.timeout,
                                 [this, alive = alive_.guard()] {
                                   if (!alive) return;
                                   finish();
                                 });
    return;
  }
  // Payload carries the transmit timestamp, like real ping.
  util::ByteWriter w(opts_.payload_size);
  w.u64(static_cast<std::uint64_t>(stack_.loop().now().count()));
  while (w.size() < opts_.payload_size) w.u8(0xA5);
  stack_.send_echo_request(dst_, id_,
                           static_cast<std::uint16_t>(next_seq_), w.take());
  ++result_.sent;
  ++next_seq_;
  stack_.loop().schedule_after(opts_.interval,
                               [this, alive = alive_.guard()] {
                                 if (!alive) return;
                                 send_next();
                               });
}

void Pinger::on_reply(const IcmpMessage& msg) {
  if (msg.payload.size() < 8) return;
  util::ByteReader r(msg.payload);
  const auto sent_ns = static_cast<std::int64_t>(r.u64());
  const Duration rtt = stack_.loop().now() - util::TimePoint{sent_ns};
  ++result_.received;
  result_.rtts_ms.add(util::to_milliseconds(rtt));
}

void Pinger::finish() {
  EchoReplyHandlerChain::for_stack(stack_).remove(id_);
  if (done_) {
    auto cb = std::move(done_);
    cb(std::move(result_));
  }
}

}  // namespace ipop::net
