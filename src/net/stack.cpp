#include "net/stack.hpp"

#include <algorithm>

#include "net/l4_patch.hpp"
#include "util/logging.hpp"

namespace ipop::net {

namespace {
std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}
std::uint64_t g_mac_counter = 1;

/// The connected-route subnet for an interface address — single
/// definition shared by add_interface() and set_interface_ip() so the
/// route added at construction and the one retracted/re-added on
/// re-addressing can never drift apart.
Ipv4Prefix connected_prefix(Ipv4Address ip, int prefix_len) {
  return Ipv4Prefix{
      Ipv4Address(ip.value &
                  (prefix_len == 0 ? 0u : ~0u << (32 - prefix_len))),
      prefix_len};
}
std::uint64_t g_stack_uid = 1;
}  // namespace

Stack::Stack(sim::EventLoop& loop, std::string host_name, StackConfig cfg)
    : loop_(&loop),
      name_(std::move(host_name)),
      uid_(g_stack_uid++),
      cfg_(cfg),
      rng_(cfg.seed != 0 ? cfg.seed : hash_name(name_)) {}

Stack::~Stack() {
  // Break handler-capture reference cycles: a socket whose on_readable /
  // receive handler captures a shared_ptr to itself (a common fixture and
  // app idiom) would otherwise never be destroyed.  Detach clears those
  // std::functions and unhooks the socket from this dying stack.
  for (auto& w : udp_created_) {
    if (auto s = w.lock()) s->detach();
  }
  for (auto& w : tcp_created_) {
    if (auto s = w.lock()) s->detach();
  }
  for (auto& w : listeners_created_) {
    if (auto l = w.lock()) l->detach();
  }
}

std::size_t Stack::add_interface(const InterfaceConfig& icfg,
                                 sim::LinkEnd* link) {
  auto iface = std::make_unique<Interface>();
  iface->cfg = icfg;
  if (iface->cfg.mac == MacAddress{}) {
    iface->cfg.mac = MacAddress::from_index(g_mac_counter++);
  }
  iface->link = link;
  const std::size_t idx = ifaces_.size();
  if (link != nullptr) {
    link->set_receiver(
        [this, idx](sim::Frame f) { on_frame(idx, std::move(f)); });
  }
  ifaces_.push_back(std::move(iface));
  // Connected route for the interface subnet.
  if (!icfg.ip.is_unspecified()) {
    add_route(connected_prefix(icfg.ip, icfg.prefix_len), idx);
  }
  return idx;
}

void Stack::set_interface_ip(std::size_t iface, Ipv4Address ip) {
  auto& cfg = ifaces_[iface]->cfg;
  if (cfg.ip == ip) return;
  // Retract the old address's connected route (a lost DHCP lease must
  // stop being answered for, not linger as a stale /32).
  if (!cfg.ip.is_unspecified()) {
    const auto old_subnet = connected_prefix(cfg.ip, cfg.prefix_len);
    std::erase_if(routes_, [&](const Route& r) {
      return r.iface == iface && !r.gateway.has_value() &&
             r.prefix.network == old_subnet.network &&
             r.prefix.length == old_subnet.length;
    });
  }
  cfg.ip = ip;
  // Connected route for the (possibly late-assigned) interface subnet —
  // the DHCP-over-DHT path brings interfaces up unnumbered and addresses
  // them once the lease lands.
  if (!ip.is_unspecified()) {
    add_route(connected_prefix(ip, cfg.prefix_len), iface);
  }
}

std::optional<std::size_t> Stack::interface_by_name(
    const std::string& name) const {
  for (std::size_t i = 0; i < ifaces_.size(); ++i) {
    if (ifaces_[i]->cfg.name == name) return i;
  }
  return std::nullopt;
}

void Stack::add_route(Ipv4Prefix prefix, std::size_t iface,
                      std::optional<Ipv4Address> gateway, int metric) {
  routes_.push_back(Route{prefix, iface, gateway, metric});
}

void Stack::add_static_arp(std::size_t iface, Ipv4Address ip, MacAddress mac) {
  ifaces_[iface]->arp_table[ip] = mac;
}

void Stack::add_ip_alias(std::size_t iface, Ipv4Address ip) {
  auto& aliases = ifaces_[iface]->aliases;
  if (std::find(aliases.begin(), aliases.end(), ip) == aliases.end()) {
    aliases.push_back(ip);
  }
}

void Stack::remove_ip_alias(std::size_t iface, Ipv4Address ip) {
  auto& aliases = ifaces_[iface]->aliases;
  aliases.erase(std::remove(aliases.begin(), aliases.end(), ip),
                aliases.end());
}

bool Stack::is_local_ip(Ipv4Address ip) const {
  for (const auto& iface : ifaces_) {
    if (iface->cfg.ip == ip) return true;
    for (const auto& alias : iface->aliases) {
      if (alias == ip) return true;
    }
  }
  return false;
}

Ipv4Address Stack::source_ip_for(Ipv4Address dst) const {
  const Route* r = lookup_route(dst);
  if (r == nullptr) return Ipv4Address{};
  return ifaces_[r->iface]->cfg.ip;
}

const Route* Stack::lookup_route(Ipv4Address dst) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.length > best->prefix.length ||
        (r.prefix.length == best->prefix.length && r.metric < best->metric)) {
      best = &r;
    }
  }
  return best;
}

// --------------------------------------------------------------------------
// Receive pipeline
// --------------------------------------------------------------------------

void Stack::on_frame(std::size_t iface, sim::Frame frame) {
  // Kernel receive-path traversal cost.
  loop_->schedule_after(cfg_.per_packet_delay,
                       [this, alive = alive_.guard(), iface,
                        frame = std::move(frame)]() mutable {
                         if (!alive) return;
                         process_frame(iface, std::move(frame));
                       });
}

void Stack::process_frame(std::size_t iface, sim::Frame frame) {
  EthernetView eth;
  try {
    eth = EthernetView::parse(frame.view());
  } catch (const util::ParseError&) {
    ++counters_.dropped_parse;
    return;
  }
  Interface& ifc = *ifaces_[iface];
  if (!eth.dst.is_broadcast() && eth.dst != ifc.cfg.mac) {
    return;  // not addressed to us
  }
  switch (eth.type) {
    case EtherType::kArp:
      handle_arp(iface, eth.payload);
      break;
    case EtherType::kIpv4:
      // Hand the frame buffer itself to the IP layer: the 14 stripped
      // Ethernet bytes become headroom and the stored payload bytes are
      // never copied again on this host.
      frame.drop_front(EthernetFrame::kHeaderSize);
      handle_ip(iface, std::move(frame));
      break;
    default:
      break;
  }
}

void Stack::handle_arp(std::size_t iface,
                       std::span<const std::uint8_t> bytes) {
  ArpMessage msg;
  try {
    msg = ArpMessage::decode(bytes);
  } catch (const util::ParseError&) {
    ++counters_.dropped_parse;
    return;
  }
  Interface& ifc = *ifaces_[iface];
  if (!msg.sender_ip.is_unspecified()) {
    ifc.arp_table[msg.sender_ip] = msg.sender_mac;
    // Flush any packets queued on this resolution.
    auto pending = ifc.arp_pending.find(msg.sender_ip);
    if (pending != ifc.arp_pending.end()) {
      if (pending->second.timer != 0) loop_->cancel(pending->second.timer);
      auto queue = std::move(pending->second.queue);
      ifc.arp_pending.erase(pending);
      for (auto& pkt : queue) {
        emit_ip(iface, msg.sender_mac, std::move(pkt));
      }
    }
  }
  if (msg.op == ArpOp::kRequest && msg.target_ip == ifc.cfg.ip) {
    ArpMessage reply;
    reply.op = ArpOp::kReply;
    reply.sender_mac = ifc.cfg.mac;
    reply.sender_ip = ifc.cfg.ip;
    reply.target_mac = msg.sender_mac;
    reply.target_ip = msg.sender_ip;
    EthernetFrame eth;
    eth.dst = msg.sender_mac;
    eth.src = ifc.cfg.mac;
    eth.type = EtherType::kArp;
    eth.payload = reply.encode();
    emit_frame(iface, util::Buffer::wrap(eth.encode()));
  }
}

void Stack::handle_ip(std::size_t iface, util::Buffer bytes) {
  Ipv4Packet pkt;
  try {
    pkt = Ipv4Packet::decode(std::move(bytes));
  } catch (const util::ParseError&) {
    ++counters_.dropped_parse;
    return;
  }
  ++counters_.ip_rx;
  if (cfg_.copy_at_stack_crossing) {
    // Ablation: the pre-zero-copy kernel copied the packet out of the
    // receive ring on every traversal.
    counters_.payload_bytes_copied += pkt.payload.size();
    // lint:allow(zero-copy): copy_at_stack_crossing ablation mode — the copy IS the experiment
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);
  }
  if (prerouting_ && !prerouting_(pkt, iface)) {
    ++counters_.dropped_hook;
    return;
  }
  if (is_local_ip(pkt.hdr.dst) || pkt.hdr.dst.is_broadcast()) {
    deliver_local(iface, std::move(pkt));
  } else if (forwarding_) {
    forward_packet(iface, std::move(pkt));
  }
  // Hosts silently drop transit packets when forwarding is disabled.
}

void Stack::forward_packet(std::size_t iface, Ipv4Packet pkt) {
  if (pkt.hdr.ttl <= 1) {
    ++counters_.dropped_ttl;
    send_icmp_error(pkt, IcmpType::kTimeExceeded, 0);
    return;
  }
  pkt.hdr.ttl -= 1;
  const Route* route = lookup_route(pkt.hdr.dst);
  if (route == nullptr) {
    ++counters_.dropped_no_route;
    send_icmp_error(pkt, IcmpType::kDestUnreachable, 0);
    return;
  }
  if (forward_ && !forward_(pkt, iface, route->iface)) {
    ++counters_.dropped_hook;
    return;
  }
  ++counters_.forwarded;
  const Ipv4Address next_hop = route->gateway.value_or(pkt.hdr.dst);
  if (postrouting_ && !postrouting_(pkt, route->iface)) {
    ++counters_.dropped_hook;
    return;
  }
  const std::size_t egress_mtu = ifaces_[route->iface]->cfg.mtu;
  if (pkt.total_length() > egress_mtu) {
    ++counters_.dropped_mtu;
    // Frag needed: report the next-hop MTU (RFC 1191) so the sender's
    // path-MTU discovery can react with a correctly sized segment.
    send_icmp_error(pkt, IcmpType::kDestUnreachable, 4,
                    static_cast<std::uint16_t>(
                        std::min<std::size_t>(egress_mtu, 65535)));
    return;
  }
  resolve_and_send(route->iface, next_hop, std::move(pkt));
}

// --------------------------------------------------------------------------
// Send pipeline
// --------------------------------------------------------------------------

void Stack::send_ip(Ipv4Packet pkt) {
  if (pkt.hdr.id == 0) pkt.hdr.id = next_ip_id_++;
  // Loopback: destination is one of our own addresses.
  if (is_local_ip(pkt.hdr.dst)) {
    if (pkt.hdr.src.is_unspecified()) pkt.hdr.src = pkt.hdr.dst;
    ++counters_.ip_tx;
    loop_->schedule_after(cfg_.per_packet_delay,
                         [this, alive = alive_.guard(),
                          pkt = std::move(pkt)]() mutable {
                           if (!alive) return;
                           deliver_local(0, std::move(pkt));
                         });
    return;
  }
  const Route* route = lookup_route(pkt.hdr.dst);
  if (route == nullptr) {
    ++counters_.dropped_no_route;
    return;
  }
  if (pkt.hdr.src.is_unspecified()) {
    pkt.hdr.src = ifaces_[route->iface]->cfg.ip;
  }
  ++counters_.ip_tx;
  const Ipv4Address next_hop = route->gateway.value_or(pkt.hdr.dst);
  if (postrouting_ && !postrouting_(pkt, route->iface)) {
    ++counters_.dropped_hook;
    return;
  }
  if (pkt.total_length() > ifaces_[route->iface]->cfg.mtu) {
    ++counters_.dropped_mtu;
    return;
  }
  resolve_and_send(route->iface, next_hop, std::move(pkt));
}

void Stack::resolve_and_send(std::size_t iface, Ipv4Address next_hop,
                             Ipv4Packet pkt) {
  Interface& ifc = *ifaces_[iface];
  if (next_hop.is_broadcast()) {
    emit_ip(iface, MacAddress::broadcast(), std::move(pkt));
    return;
  }
  auto arp = ifc.arp_table.find(next_hop);
  if (arp != ifc.arp_table.end()) {
    emit_ip(iface, arp->second, std::move(pkt));
    return;
  }
  // Queue behind an ARP resolution.
  PendingArp& pending = ifc.arp_pending[next_hop];
  pending.queue.push_back(std::move(pkt));
  if (pending.timer == 0) {
    pending.attempts = 0;
    send_arp_request(iface, next_hop);
    pending.timer = loop_->schedule_after(
        cfg_.arp_retry, [this, iface, next_hop] { arp_retry(iface, next_hop); });
  }
}

void Stack::arp_retry(std::size_t iface, Ipv4Address target) {
  Interface& ifc = *ifaces_[iface];
  auto it = ifc.arp_pending.find(target);
  if (it == ifc.arp_pending.end()) return;
  PendingArp& pending = it->second;
  if (++pending.attempts >= cfg_.arp_retries) {
    counters_.dropped_arp_fail += pending.queue.size();
    ifc.arp_pending.erase(it);
    return;
  }
  send_arp_request(iface, target);
  pending.timer = loop_->schedule_after(
      cfg_.arp_retry, [this, iface, target] { arp_retry(iface, target); });
}

void Stack::send_arp_request(std::size_t iface, Ipv4Address target) {
  Interface& ifc = *ifaces_[iface];
  ArpMessage req;
  req.op = ArpOp::kRequest;
  req.sender_mac = ifc.cfg.mac;
  req.sender_ip = ifc.cfg.ip;
  req.target_ip = target;
  EthernetFrame eth;
  eth.dst = MacAddress::broadcast();
  eth.src = ifc.cfg.mac;
  eth.type = EtherType::kArp;
  eth.payload = req.encode();
  emit_frame(iface, util::Buffer::wrap(eth.encode()));
}

void Stack::emit_ip(std::size_t iface, MacAddress dst, Ipv4Packet pkt) {
  Interface& ifc = *ifaces_[iface];
  if (cfg_.copy_at_stack_crossing) {
    // Ablation: the pre-zero-copy kernel serialized the packet into a
    // fresh frame on every transmit.
    counters_.payload_bytes_copied += pkt.payload.size();
    // lint:allow(zero-copy): copy_at_stack_crossing ablation mode — the copy IS the experiment
    pkt.payload = pkt.payload.clone(util::kPacketHeadroom);
  }
  if (!pkt.wire_in_place(EthernetFrame::kHeaderSize)) {
    // Shared or cramped storage: the header prepend reallocates once.
    counters_.payload_bytes_copied += pkt.payload.size();
  }
  // The IP header lands in the payload buffer's headroom, the Ethernet
  // header in front of that; locally generated and forwarded packets
  // alike leave without their payload ever moving.  Freshly allocated
  // storage carries util::kPacketHeadroom spare front bytes, so when the
  // frame pops out of a tap device IPOP can strip this Ethernet header
  // and prepend the Brunet tunnel header into the same storage.
  emit_frame(iface,
             frame_onto(pkt.take_wire(), dst, ifc.cfg.mac, EtherType::kIpv4));
}

void Stack::emit_frame(std::size_t iface, util::Buffer frame) {
  // Kernel transmit-path traversal cost.  The interface is re-looked-up
  // inside the callback (by index, behind the liveness guard) because the
  // event can outlive both the Interface object and the whole Stack.
  loop_->schedule_after(cfg_.per_packet_delay,
                       [this, alive = alive_.guard(), iface,
                        raw = std::move(frame)]() mutable {
                         if (!alive) return;
                         Interface& ifc = *ifaces_[iface];
                         if (ifc.link != nullptr) ifc.link->send(std::move(raw));
                       });
}

// --------------------------------------------------------------------------
// Local delivery
// --------------------------------------------------------------------------

void Stack::deliver_local(std::size_t iface, Ipv4Packet pkt) {
  (void)iface;
  switch (pkt.hdr.proto) {
    case IpProto::kIcmp:
      deliver_icmp(std::move(pkt));
      break;
    case IpProto::kUdp:
      deliver_udp(std::move(pkt));
      break;
    case IpProto::kTcp:
      deliver_tcp(pkt);
      break;
  }
}

void Stack::deliver_icmp(Ipv4Packet pkt) {
  IcmpView msg;
  try {
    msg = IcmpView::parse(pkt.payload.view());
  } catch (const util::ParseError&) {
    ++counters_.dropped_parse;
    return;
  }
  // Handlers receive an owning message (the kernel/user crossing).
  auto to_message = [&msg] {
    IcmpMessage m;
    m.type = msg.type;
    m.code = msg.code;
    m.id = msg.id;
    m.seq = msg.seq;
    // lint:allow(zero-copy): echo-handler struct compat — ICMP control plane, not forwarded traffic
    m.payload = msg.payload.to_vector();
    return m;
  };
  switch (msg.type) {
    case IcmpType::kEchoRequest: {
      ++counters_.icmp_echo_replied;
      // Kernel-style echo: the reply reuses the request's buffer — flip
      // the type byte in place and fix the checksum incrementally
      // (RFC 1624) instead of re-encoding the payload.
      Ipv4Packet out;
      out.hdr.proto = IpProto::kIcmp;
      out.hdr.src = pkt.hdr.dst;
      out.hdr.dst = pkt.hdr.src;
      out.payload = std::move(pkt.payload);
      if (out.payload.use_count() > 1) {
        // Shared storage (e.g. a flooded frame): copy-on-write.
        counters_.payload_bytes_copied += out.payload.size();
        // lint:allow(zero-copy): explicit COW before an in-place patch of shared storage (counted)
        out.payload = out.payload.clone(util::kPacketHeadroom);
      }
      const std::uint16_t old_word = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(IcmpType::kEchoRequest) << 8 | msg.code);
      const std::uint16_t new_word = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(IcmpType::kEchoReply) << 8 | msg.code);
      const std::uint16_t old_csum =
          util::load_u16(out.payload.data() + IcmpView::kChecksumOffset);
      out.payload.patch_u8(IcmpView::kTypeOffset,
                           static_cast<std::uint8_t>(IcmpType::kEchoReply));
      out.payload.patch_u16(IcmpView::kChecksumOffset,
                            checksum_update(old_csum, old_word, new_word));
      send_ip(std::move(out));
      break;
    }
    case IcmpType::kEchoReply:
      if (echo_reply_handler_) echo_reply_handler_(pkt.hdr.src, to_message());
      break;
    case IcmpType::kDestUnreachable:
    case IcmpType::kTimeExceeded:
      ++counters_.icmp_errors_delivered;
      if (msg.type == IcmpType::kDestUnreachable && msg.code == 4) {
        // Frag needed: kernel-style path-MTU discovery.  Map the quoted
        // original packet back to the TCP connection that sent it and
        // let it shrink its MSS (msg.seq carries the next-hop MTU).
        if (auto quote = icmp_error_quote(pkt);
            quote && quote->proto == IpProto::kTcp) {
          auto it = tcp_socks_.find(TcpKey{quote->src_ip, quote->src.port,
                                           quote->dst_ip, quote->dst.port});
          if (it != tcp_socks_.end()) {
            auto sock = it->second;  // keep alive across state changes
            sock->handle_frag_needed(msg.seq);
          }
        }
      }
      if (icmp_error_handler_) {
        // Invoke a copy: the handler may replace itself (net::Traceroute
        // restores the displaced handler from inside its last callback),
        // and reassigning the member would destroy the executing closure.
        auto handler = icmp_error_handler_;
        handler(pkt.hdr.src, to_message());
      }
      break;
  }
}

void Stack::send_echo_request(Ipv4Address dst, std::uint16_t id,
                              std::uint16_t seq,
                              std::vector<std::uint8_t> payload) {
  IcmpMessage msg;
  msg.type = IcmpType::kEchoRequest;
  msg.id = id;
  msg.seq = seq;
  msg.payload = std::move(payload);
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kIcmp;
  pkt.hdr.dst = dst;
  pkt.payload = msg.encode_buffer(util::kPacketHeadroom);
  send_ip(std::move(pkt));
}

void Stack::send_icmp_error(const Ipv4Packet& original, IcmpType type,
                            std::uint8_t code, std::uint16_t info) {
  // Never generate errors about ICMP errors.
  if (original.hdr.proto == IpProto::kIcmp) {
    try {
      auto m = IcmpView::parse(original.payload.view());
      if (!m.is_echo()) return;
    } catch (const util::ParseError&) {
      return;
    }
  }
  IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  // The second header word's low half (the echo `seq` slot) carries the
  // error's auxiliary info — the next-hop MTU for frag-needed.
  msg.seq = info;
  // Quote the original header + 8 payload bytes, per RFC 792.  The
  // header (carrying the original total-length field) is re-serialized
  // directly into the quote: the payload beyond 8 bytes is never copied.
  const std::size_t quote_payload =
      std::min<std::size_t>(original.payload.size(), 8);
  std::vector<std::uint8_t> quoted(Ipv4Header::kSize + quote_payload);
  Ipv4Packet::encode_header(quoted.data(), original.hdr,
                            original.total_length());
  // lint:allow(zero-copy): ICMP error builder quotes <= 8 payload bytes (RFC 792), control plane
  std::copy_n(original.payload.begin(), quote_payload,
              quoted.begin() + Ipv4Header::kSize);
  msg.payload = std::move(quoted);
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kIcmp;
  pkt.hdr.dst = original.hdr.src;
  pkt.payload = msg.encode_buffer(util::kPacketHeadroom);
  ++counters_.icmp_errors_sent;
  send_ip(std::move(pkt));
}

void Stack::deliver_udp(Ipv4Packet pkt) {
  UdpView dgram;
  try {
    dgram = UdpView::parse(pkt.payload.view());
  } catch (const util::ParseError&) {
    ++counters_.dropped_parse;
    return;
  }
  // A nonzero checksum is validated against the pseudo-header; 0 means
  // "not computed" and is accepted (RFC 768).
  if (dgram.checksum != 0 &&
      transport_checksum(pkt.hdr.src, pkt.hdr.dst, IpProto::kUdp,
                         pkt.payload.view(0, dgram.length)) != 0) {
    ++counters_.dropped_checksum;
    return;
  }
  auto it = udp_socks_.find(dgram.dst_port);
  if (it == udp_socks_.end()) {
    send_icmp_error(pkt, IcmpType::kDestUnreachable, 3);  // port unreachable
    return;
  }
  auto sock = it->second;  // keep alive: the handler may close the socket
  const Ipv4Address src = pkt.hdr.src;
  const std::uint16_t sport = dgram.src_port;
  // Delivery is a sub-buffer share of the received frame: drop the UDP
  // header (and any padding past the length field) without copying.
  util::Buffer data = std::move(pkt.payload);
  data.drop_back(data.size() - dgram.length);
  data.drop_front(UdpDatagram::kHeaderSize);
  sock->deliver(src, sport, std::move(data));
}

void Stack::deliver_tcp(const Ipv4Packet& pkt) {
  TcpSegment seg;
  try {
    seg = TcpSegment::decode(pkt.payload, pkt.hdr.src, pkt.hdr.dst);
  } catch (const util::ParseError&) {
    ++counters_.dropped_parse;
    return;
  }
  const TcpKey key{pkt.hdr.dst, seg.dst_port, pkt.hdr.src, seg.src_port};
  auto it = tcp_socks_.find(key);
  if (it != tcp_socks_.end()) {
    auto sock = it->second;  // keep alive across potential unregister
    sock->on_segment(seg);
    return;
  }
  auto lit = tcp_listeners_.find(seg.dst_port);
  if (lit != tcp_listeners_.end() && seg.flags.syn && !seg.flags.ack) {
    lit->second->handle_syn(pkt.hdr.dst, seg, pkt.hdr.src);
    return;
  }
  if (!seg.flags.rst) send_tcp_rst_for(pkt, seg);
}

void Stack::send_tcp_rst_for(const Ipv4Packet& pkt, const TcpSegment& seg) {
  TcpSegment rst;
  rst.src_port = seg.dst_port;
  rst.dst_port = seg.src_port;
  rst.flags.rst = true;
  if (seg.flags.ack) {
    rst.seq = seg.ack;
  } else {
    rst.flags.ack = true;
    rst.seq = 0;
    rst.ack = seg.seq + static_cast<std::uint32_t>(seg.payload.size()) +
              (seg.flags.syn ? 1 : 0) + (seg.flags.fin ? 1 : 0);
  }
  Ipv4Packet out;
  out.hdr.proto = IpProto::kTcp;
  out.hdr.src = pkt.hdr.dst;
  out.hdr.dst = pkt.hdr.src;
  out.payload =
      rst.encode_buffer(out.hdr.src, out.hdr.dst, util::kPacketHeadroom);
  send_ip(std::move(out));
}

// --------------------------------------------------------------------------
// Socket management
// --------------------------------------------------------------------------

std::uint16_t Stack::alloc_ephemeral_port(bool tcp) {
  for (int tries = 0; tries < 65536; ++tries) {
    std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
    if (p < 32768) continue;
    if (tcp) {
      bool used = tcp_listeners_.count(p) > 0;
      for (const auto& [key, sock] : tcp_socks_) {
        if (key.local_port == p) {
          used = true;
          break;
        }
      }
      if (!used) return p;
    } else {
      if (udp_socks_.count(p) == 0) return p;
    }
  }
  return 0;
}

std::shared_ptr<UdpSocket> Stack::udp_bind(std::uint16_t port) {
  if (port == 0) port = alloc_ephemeral_port(/*tcp=*/false);
  if (port == 0 || udp_socks_.count(port) > 0) return nullptr;
  auto sock = std::shared_ptr<UdpSocket>(new UdpSocket(this, port));
  udp_socks_[port] = sock;
  remember(udp_created_, sock);
  return sock;
}

void Stack::udp_unregister(std::uint16_t port) { udp_socks_.erase(port); }

std::shared_ptr<TcpSocket> Stack::tcp_connect(Ipv4Address dst,
                                              std::uint16_t port,
                                              TcpConfig cfg) {
  const Route* route = lookup_route(dst);
  if (route == nullptr) return nullptr;
  const std::size_t mtu = ifaces_[route->iface]->cfg.mtu;
  cfg.mss = std::min(cfg.mss, mtu - Ipv4Header::kSize - TcpSegment::kHeaderSize);
  const std::uint16_t sport = alloc_ephemeral_port(/*tcp=*/true);
  const Ipv4Address src = ifaces_[route->iface]->cfg.ip;
  auto sock = std::shared_ptr<TcpSocket>(new TcpSocket(this, cfg));
  tcp_register(TcpKey{src, sport, dst, port}, sock);
  sock->start_connect(dst, port, src, sport);
  return sock;
}

std::shared_ptr<TcpListener> Stack::tcp_listen(std::uint16_t port,
                                               TcpConfig cfg) {
  if (port == 0 || tcp_listeners_.count(port) > 0) return nullptr;
  auto listener = std::shared_ptr<TcpListener>(new TcpListener(this, port, cfg));
  tcp_listeners_[port] = listener;
  remember(listeners_created_, listener);
  return listener;
}

void Stack::tcp_register(const TcpKey& key, std::shared_ptr<TcpSocket> sock) {
  remember(tcp_created_, sock);
  tcp_socks_[key] = std::move(sock);
}

void Stack::tcp_unregister(const TcpKey& key) { tcp_socks_.erase(key); }

// --------------------------------------------------------------------------
// UdpSocket
// --------------------------------------------------------------------------

void UdpSocket::send_to(Ipv4Address dst, std::uint16_t dst_port,
                        std::vector<std::uint8_t> data) {
  // The wrapped vector has no headroom, so the header prepend below
  // reallocates once — the copy a real sendto() performs.
  send_to(dst, dst_port, util::Buffer::wrap(std::move(data)));
}

void UdpSocket::send_to(Ipv4Address dst, std::uint16_t dst_port,
                        util::Buffer data) {
  if (stack_ == nullptr) return;
  ++stack_->counters_.udp_send_calls;
  emit_datagram(dst, dst_port, util::BufferChain(std::move(data)));
}

void UdpSocket::send_to(Ipv4Address dst, std::uint16_t dst_port,
                        util::BufferChain data) {
  if (stack_ == nullptr) return;
  ++stack_->counters_.udp_send_calls;
  emit_datagram(dst, dst_port, std::move(data));
}

std::size_t UdpSocket::send_batch(std::span<UdpSendItem> items) {
  // A batch issued against a closed socket (or one whose stack died and
  // detached it) is dropped wholesale — never touch a dead stack.
  if (stack_ == nullptr) return 0;
  ++stack_->counters_.udp_send_calls;
  std::size_t sent = 0;
  for (UdpSendItem& item : items) {
    if (stack_ == nullptr) break;  // defensive: closed mid-batch
    emit_datagram(item.dst, item.dst_port, std::move(item.payload));
    ++sent;
  }
  return sent;
}

void UdpSocket::emit_datagram(Ipv4Address dst, std::uint16_t dst_port,
                              util::BufferChain payload) {
  const std::size_t payload_len = payload.size();
  util::Buffer data;
  if (payload.segments() > 1) {
    // Scatter-gather datagram build: header + every chain segment come
    // together in one NIC-style gather pass into fresh storage (with
    // headroom for the IP/Ethernet prepends downstream).  Attributed to
    // payload_bytes_gathered — DMA descriptor work, not a CPU copy on
    // the send path — except under the copy_at_stack_crossing ablation,
    // where it is exactly the historical kernel copy.
    data = util::Buffer::allocate(UdpDatagram::kHeaderSize + payload_len,
                                  util::kPacketHeadroom);
    UdpDatagram::write_header(data.data(), port_, dst_port, payload_len);
    payload.gather(0, data.writable().subspan(UdpDatagram::kHeaderSize));
    if (stack_->cfg_.copy_at_stack_crossing) {
      stack_->counters_.payload_bytes_copied += payload_len;
    } else {
      stack_->counters_.payload_bytes_gathered += payload_len;
    }
  } else {
    if (payload.segments() == 1) data = payload.segment(0).share();
    payload.clear();
    if (stack_->cfg_.copy_at_stack_crossing) {
      // Ablation: force the historical user/kernel send copy.
      stack_->counters_.payload_bytes_copied += data.size();
      // lint:allow(zero-copy): copy_at_stack_crossing ablation mode — the copy IS the experiment
      data = data.clone(util::kPacketHeadroom);
    }
    if (!(data.use_count() == 1 &&
          data.headroom() >= UdpDatagram::kHeaderSize)) {
      stack_->counters_.payload_bytes_copied += data.size();
    }
    // The 8-byte header lands in the user buffer's headroom: the send
    // crosses into the simulated kernel without copying the payload (the
    // copy the paper's Section V.2 proposes eliminating).
    auto slot = data.grow_front(UdpDatagram::kHeaderSize);
    UdpDatagram::write_header(slot.data(), port_, dst_port, payload_len);
  }
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.dst = dst;
  pkt.payload = std::move(data);
  ++tx_;
  stack_->send_ip(std::move(pkt));
}

void UdpSocket::deliver(Ipv4Address src, std::uint16_t src_port,
                        util::Buffer data) {
  ++rx_;
  if (buf_handler_) {
    if (stack_ != nullptr && stack_->cfg_.copy_at_stack_crossing) {
      // Ablation: force the historical kernel/user delivery copy.
      stack_->counters_.payload_bytes_copied += data.size();
      // lint:allow(zero-copy): copy_at_stack_crossing ablation mode — the copy IS the experiment
      data = data.clone();
    }
    buf_handler_(src, src_port, std::move(data));
  } else if (handler_) {
    if (stack_ != nullptr) {
      stack_->counters_.payload_bytes_copied += data.size();
    }
    // lint:allow(zero-copy): legacy vector-handler delivery, counted above; zero-copy apps use buf_handler_
    handler_(src, src_port, data.to_vector());
  }
}

void UdpSocket::close() {
  if (stack_ == nullptr) return;
  stack_->udp_unregister(port_);
  detach();
}

}  // namespace ipop::net
