// IPv4 addresses, prefixes, header codec and the Internet checksum.
//
// IPOP tunnels complete IPv4 packets through the overlay (paper Figure 3):
// the encapsulated payload is exactly the bytes this codec produces.  The
// same codec drives the simulated kernel stacks, routers, NATs and
// firewalls of the physical substrate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/buffer.hpp"
#include "util/bytes.hpp"

namespace ipop::net {

struct Ipv4Address {
  std::uint32_t value = 0;  // host byte order

  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t v) : value(v) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value(static_cast<std::uint32_t>(a) << 24 |
              static_cast<std::uint32_t>(b) << 16 |
              static_cast<std::uint32_t>(c) << 8 | d) {}

  /// Parse dotted-quad; throws util::ParseError on malformed input.
  static Ipv4Address parse(std::string_view text);

  std::string to_string() const;
  bool is_broadcast() const { return value == 0xFFFFFFFFu; }
  bool is_unspecified() const { return value == 0; }

  friend bool operator==(const Ipv4Address&, const Ipv4Address&) = default;
  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;
};

struct Ipv4Prefix {
  Ipv4Address network;
  int length = 0;  // 0..32

  static Ipv4Prefix parse(std::string_view cidr);  // "a.b.c.d/len"

  std::uint32_t mask() const {
    return length == 0 ? 0u : ~0u << (32 - length);
  }
  bool contains(Ipv4Address a) const {
    return (a.value & mask()) == (network.value & mask());
  }
  std::string to_string() const;

  friend bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;
};

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t id = 0;
  std::uint8_t ttl = 64;
  IpProto proto = IpProto::kUdp;
  Ipv4Address src;
  Ipv4Address dst;

  static constexpr std::size_t kSize = 20;  // no options supported
};

struct Ipv4Packet {
  Ipv4Header hdr;
  /// L4 payload as a shared buffer: the receive path adopts the arriving
  /// frame's storage, middlebox hooks patch fields in place, and the
  /// transmit path prepends the IP header into the buffer's headroom —
  /// zero payload copies through the simulated kernel.
  util::Buffer payload;

  std::size_t total_length() const { return Ipv4Header::kSize + payload.size(); }

  /// Owning serialization with computed header checksum (tests,
  /// compatibility); leaves `payload` untouched.
  std::vector<std::uint8_t> encode() const;
  /// Write the 20-byte header (with computed checksum) for a packet of
  /// `total_len` bytes into a pre-sized slot — the single definition of
  /// the header wire format, shared by encode(), take_wire() and the
  /// ICMP error path's truncated RFC 792 quote.
  static void encode_header(std::uint8_t* out, const Ipv4Header& hdr,
                            std::size_t total_len);
  /// Consume `payload` and return the wire image: the 20-byte header is
  /// written into the buffer's headroom — zero-copy when the storage is
  /// uniquely referenced and roomy, one reallocation otherwise.
  util::Buffer take_wire();
  /// True when take_wire() (followed by an Ethernet prepend of
  /// `link_headroom` more bytes) will reuse headroom instead of
  /// reallocating — the stacks' bytes-copied accounting.
  bool wire_in_place(std::size_t link_headroom = 0) const {
    return payload.use_count() == 1 &&
           payload.headroom() >= Ipv4Header::kSize + link_headroom;
  }
  /// Copying decode for non-owned input.  Throws util::ParseError on
  /// malformed input or bad header checksum.
  static Ipv4Packet decode(util::BufferView bytes);
  /// Zero-copy decode: adopts `bytes` as the payload's backing store (the
  /// 20 header bytes and any link padding become head/tailroom).
  static Ipv4Packet decode(util::Buffer bytes);
};

/// Zero-copy parsed IPv4 packet: `payload` aliases the input view (and is
/// trimmed to the header's total-length field, dropping link padding).
/// Used on the IPOP fast path, where the packet bytes are tunneled onward
/// verbatim and an owning copy would be pure waste.
struct Ipv4View {
  Ipv4Header hdr;
  util::BufferView payload;

  /// Validates version/IHL/fragmentation/total-length/header checksum;
  /// throws util::ParseError like Ipv4Packet::decode.
  static Ipv4View parse(util::BufferView bytes);
};

/// RFC 1071 Internet checksum over `data` (16-bit one's complement sum).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Transport checksum with the IPv4 pseudo-header (used by TCP; UDP may
/// legally use 0 = "no checksum" over IPv4, which the simulator does).
std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 IpProto proto,
                                 std::span<const std::uint8_t> segment);

/// Incremental Internet-checksum update (RFC 1624 eqn. 3): the checksum
/// after one 16-bit word of the covered data changes from `old_word` to
/// `new_word`.  Lets NAT rewrite ports/addresses without re-summing the
/// payload.
std::uint16_t checksum_update(std::uint16_t csum, std::uint16_t old_word,
                              std::uint16_t new_word);

}  // namespace ipop::net

template <>
struct std::hash<ipop::net::Ipv4Address> {
  std::size_t operator()(const ipop::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
