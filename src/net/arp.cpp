#include "net/arp.hpp"

namespace ipop::net {

std::vector<std::uint8_t> ArpMessage::encode() const {
  util::ByteWriter w(28);
  w.u16(1);       // hardware type: Ethernet
  w.u16(0x0800);  // protocol type: IPv4
  w.u8(6);        // hardware address length
  w.u8(4);        // protocol address length
  w.u16(static_cast<std::uint16_t>(op));
  w.bytes(std::span<const std::uint8_t>(sender_mac.octets.data(), 6));
  w.u32(sender_ip.value);
  w.bytes(std::span<const std::uint8_t>(target_mac.octets.data(), 6));
  w.u32(target_ip.value);
  return w.take();
}

ArpMessage ArpMessage::decode(util::BufferView bytes) {
  util::ByteReader r(bytes);
  if (r.u16() != 1 || r.u16() != 0x0800 || r.u8() != 6 || r.u8() != 4) {
    throw util::ParseError("unsupported ARP format");
  }
  ArpMessage m;
  m.op = static_cast<ArpOp>(r.u16());
  auto smac = r.bytes(6);
  std::copy(smac.begin(), smac.end(), m.sender_mac.octets.begin());
  m.sender_ip = Ipv4Address(r.u32());
  auto tmac = r.bytes(6);
  std::copy(tmac.begin(), tmac.end(), m.target_mac.octets.begin());
  m.target_ip = Ipv4Address(r.u32());
  return m;
}

}  // namespace ipop::net
