#include "net/conntrack.hpp"

namespace ipop::net {

const char* ct_tcp_state_name(CtTcpState s) {
  switch (s) {
    case CtTcpState::kNone: return "NONE";
    case CtTcpState::kSynSent: return "SYN_SENT";
    case CtTcpState::kSynRecv: return "SYN_RECV";
    case CtTcpState::kEstablished: return "ESTABLISHED";
    case CtTcpState::kFinWait: return "FIN_WAIT";
    case CtTcpState::kTimeWait: return "TIME_WAIT";
    case CtTcpState::kClosed: return "CLOSED";
  }
  return "?";
}

void CtFlow::on_tcp_flags(const TcpFlags& f, bool from_originator) {
  if (f.rst) {
    tcp = CtTcpState::kClosed;
    return;
  }
  if (f.syn && !f.ack) {
    // A fresh SYN restarts tracking — including tuple reuse after a
    // closed flow's state has not yet been swept (port churn).
    tcp = CtTcpState::kSynSent;
    fin_seen[0] = fin_seen[1] = false;
    return;
  }
  if (f.syn && f.ack) {
    if (!from_originator &&
        (tcp == CtTcpState::kSynSent || tcp == CtTcpState::kNone)) {
      tcp = CtTcpState::kSynRecv;
    }
    return;
  }
  if (f.fin) {
    fin_seen[from_originator ? 0 : 1] = true;
    tcp = (fin_seen[0] && fin_seen[1]) ? CtTcpState::kTimeWait
                                       : CtTcpState::kFinWait;
    return;
  }
  // Plain ACK: completes the handshake; a mid-flow pickup (no handshake
  // observed) is assumed established, as real trackers do with loose
  // pickup enabled.
  if (tcp == CtTcpState::kSynRecv || tcp == CtTcpState::kNone) {
    tcp = CtTcpState::kEstablished;
  }
}

util::Duration CtFlow::timeout(IpProto proto,
                               const ConntrackTimeouts& t) const {
  switch (proto) {
    case IpProto::kUdp: return t.udp_idle;
    case IpProto::kIcmp: return t.icmp_idle;
    case IpProto::kTcp: break;
  }
  switch (tcp) {
    case CtTcpState::kNone:
    case CtTcpState::kSynSent:
    case CtTcpState::kSynRecv: return t.tcp_syn;
    case CtTcpState::kEstablished: return t.tcp_established;
    case CtTcpState::kFinWait: return t.tcp_fin_wait;
    case CtTcpState::kTimeWait: return t.tcp_time_wait;
    case CtTcpState::kClosed: return t.tcp_closed;
  }
  return t.tcp_syn;
}

std::optional<TcpFlags> tcp_flags_of(const Ipv4Packet& pkt) {
  if (pkt.hdr.proto != IpProto::kTcp) return std::nullopt;
  try {
    return TcpView::parse(pkt.payload.view()).flags;
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

}  // namespace ipop::net
