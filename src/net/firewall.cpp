#include "net/firewall.hpp"

#include "util/logging.hpp"

namespace ipop::net {

Firewall::Firewall(sim::EventLoop& loop, std::string name, StackConfig scfg,
                   FirewallConfig fwcfg)
    : name_(std::move(name)),
      stack_(loop, name_, scfg),
      fwcfg_(fwcfg),
      sweeper_(loop, fwcfg.sweep_interval, [this](util::TimePoint now) {
        expire_idle(now);
        return !conntrack_.empty();
      }) {
  stack_.set_forwarding(true);
  stack_.set_forward_hook(
      [this](const Ipv4Packet& pkt, std::size_t in_if, std::size_t out_if) {
        return filter(pkt, in_if, out_if);
      });
}

Firewall::~Firewall() = default;

void Firewall::expire_idle(util::TimePoint now) {
  for (auto it = conntrack_.begin(); it != conntrack_.end();) {
    if (it->second.expired(now, it->first.proto, fwcfg_.timeouts)) {
      IPOP_LOG_DEBUG(name_ << ": expired conntrack "
                           << it->first.a_ip.to_string() << ":"
                           << it->first.a_port << " -> "
                           << it->first.b_ip.to_string() << ":"
                           << it->first.b_port << " ("
                           << ct_tcp_state_name(it->second.tcp) << ")");
      it = conntrack_.erase(it);
      ++stats_.conntrack_expired;
    } else {
      ++it;
    }
  }
}

std::optional<Firewall::FlowKey> Firewall::flow_of(const Ipv4Packet& pkt) {
  // Shared view-based classification (net/l4_patch.hpp): the filter
  // reads ports/ids without ever copying the payload it only inspects.
  auto eps = l4_endpoints_of(pkt);
  if (!eps) return std::nullopt;
  return FlowKey{pkt.hdr.proto, eps->first.ip, eps->first.port,
                 eps->second.ip, eps->second.port};
}

void Firewall::note_tracked(CtFlow& flow, const Ipv4Packet& pkt,
                            bool from_originator) {
  if (auto flags = tcp_flags_of(pkt)) {
    flow.on_tcp_flags(*flags, from_originator);
  }
  flow.last_used = stack_.loop().now();
}

CtFlow& Firewall::track_new(const FlowKey& key) {
  auto [it, inserted] = conntrack_.try_emplace(key);
  if (inserted) sweeper_.ensure_armed();
  return it->second;
}

bool Firewall::filter(const Ipv4Packet& pkt, std::size_t in_if,
                      std::size_t /*out_if*/) {
  const bool outbound = in_if == 0;
  auto flow = flow_of(pkt);
  if (!flow) {
    // Non-echo ICMP: errors about a tracked flow pass as related traffic.
    if (pkt.hdr.proto == IpProto::kIcmp) {
      return filter_icmp_error(pkt, outbound);
    }
    return false;
  }

  const auto flags = tcp_flags_of(pkt);
  if (flags && flags->syn && !flags->ack) {
    // A fresh SYN never rides an existing entry (netfilter semantics):
    // letting it would turn any tracked tuple into a renewable hole an
    // outside host could keep open with bare SYNs.
    auto it = conntrack_.find(*flow);
    const bool from_originator = it != conntrack_.end();
    if (!from_originator) it = conntrack_.find(flow->reversed());
    if (it != conntrack_.end()) {
      if (from_originator && (it->second.tcp == CtTcpState::kSynSent ||
                              it->second.tcp == CtTcpState::kSynRecv)) {
        // The originator retransmitting its own SYN (e.g. the SYN-ACK
        // was lost on the inside leg): still the same half-open flow.
        note_tracked(it->second, pkt, /*from_originator=*/true);
        ++(outbound ? stats_.allowed_out : stats_.allowed_in_established);
        return true;
      }
      if (it->second.tcp == CtTcpState::kTimeWait ||
          it->second.tcp == CtTcpState::kClosed) {
        // Tuple reuse after teardown: the dead entry is dropped and the
        // SYN is admitted only if the chains accept a NEW flow below.
        conntrack_.erase(it);
      } else {
        // SYN inside a live flow: invalid — drop without refreshing (or
        // restarting) the tracked state.
        ++(outbound ? stats_.blocked_out : stats_.blocked_in);
        return false;
      }
    }
  } else {
    // Tracked flows bypass the chains in both orientations (stateful
    // semantics: established traffic keeps flowing even under
    // default-deny policies); the entry's TCP state advances with every
    // segment.
    if (auto it = conntrack_.find(*flow); it != conntrack_.end()) {
      note_tracked(it->second, pkt, /*from_originator=*/true);
      ++(outbound ? stats_.allowed_out : stats_.allowed_in_established);
      return true;
    }
    if (auto it = conntrack_.find(flow->reversed()); it != conntrack_.end()) {
      note_tracked(it->second, pkt, /*from_originator=*/false);
      ++(outbound ? stats_.allowed_out : stats_.allowed_in_established);
      return true;
    }
  }

  if (outbound) {
    // New flow inside -> outside: first matching chain rule wins.
    FwAction action = outbound_default_;
    for (const auto& [rule_action, rule] : outbound_chain_) {
      if (rule.matches(flow->proto, flow->a_ip, flow->a_port, flow->b_ip,
                       flow->b_port)) {
        action = rule_action;
        break;
      }
    }
    if (action == FwAction::kDeny) {
      ++stats_.blocked_out;
      return false;
    }
    note_tracked(track_new(*flow), pkt, /*from_originator=*/true);
    ++stats_.allowed_out;
    return true;
  }

  // New flow outside -> inside: denied unless a rule punctures the wall.
  for (const auto& rule : inbound_rules_) {
    if (rule.matches(flow->proto, flow->a_ip, flow->a_port, flow->b_ip,
                     flow->b_port)) {
      // Admit and track so the inside host's replies flow out statefully.
      note_tracked(track_new(*flow), pkt, /*from_originator=*/true);
      ++stats_.allowed_in_rule;
      return true;
    }
  }
  ++stats_.blocked_in;
  IPOP_LOG_DEBUG(name_ << ": blocked inbound " << flow->a_ip.to_string() << ":"
                       << flow->a_port << " -> " << flow->b_ip.to_string()
                       << ":" << flow->b_port);
  return false;
}

bool Firewall::filter_icmp_error(const Ipv4Packet& pkt, bool outbound) {
  auto q = icmp_error_quote(pkt);
  if (q) {
    // The quoted packet is one this box forwarded earlier; admit the
    // error if that flow is tracked in either orientation (conntrack's
    // RELATED state).  The error itself does not refresh the flow.
    const FlowKey quoted{q->proto, q->src.ip, q->src.port, q->dst.ip,
                         q->dst.port};
    if (conntrack_.count(quoted) > 0 ||
        conntrack_.count(quoted.reversed()) > 0) {
      ++stats_.allowed_related;
      return true;
    }
  }
  ++(outbound ? stats_.blocked_out : stats_.blocked_in);
  IPOP_LOG_DEBUG(name_ << ": blocked unrelated ICMP error ("
                       << (outbound ? "outbound" : "inbound") << ")");
  return false;
}

}  // namespace ipop::net
