#include "net/firewall.hpp"

#include "net/icmp.hpp"
#include "net/udp.hpp"
#include "util/logging.hpp"

namespace ipop::net {

Firewall::Firewall(sim::EventLoop& loop, std::string name, StackConfig scfg)
    : name_(std::move(name)), stack_(loop, name_, scfg) {
  stack_.set_forwarding(true);
  stack_.set_forward_hook(
      [this](const Ipv4Packet& pkt, std::size_t in_if, std::size_t out_if) {
        return filter(pkt, in_if, out_if);
      });
}

std::optional<Firewall::FlowKey> Firewall::flow_of(const Ipv4Packet& pkt) {
  try {
    switch (pkt.hdr.proto) {
      case IpProto::kUdp: {
        auto d = UdpDatagram::decode(pkt.payload);
        return FlowKey{pkt.hdr.proto, pkt.hdr.src, d.src_port, pkt.hdr.dst,
                       d.dst_port};
      }
      case IpProto::kTcp: {
        util::ByteReader r(pkt.payload);
        const std::uint16_t sport = r.u16();
        const std::uint16_t dport = r.u16();
        return FlowKey{pkt.hdr.proto, pkt.hdr.src, sport, pkt.hdr.dst, dport};
      }
      case IpProto::kIcmp: {
        auto m = IcmpMessage::decode(pkt.payload);
        if (!m.is_echo()) return std::nullopt;
        return FlowKey{pkt.hdr.proto, pkt.hdr.src, m.id, pkt.hdr.dst, m.id};
      }
    }
  } catch (const util::ParseError&) {
  }
  return std::nullopt;
}

bool Firewall::filter(const Ipv4Packet& pkt, std::size_t in_if,
                      std::size_t /*out_if*/) {
  auto flow = flow_of(pkt);
  if (!flow) return false;

  if (in_if == 0) {
    // Outbound (inside -> outside): first matching chain rule wins.
    FwAction action = outbound_default_;
    for (const auto& [rule_action, rule] : outbound_chain_) {
      if (rule.matches(flow->proto, flow->a_ip, flow->a_port, flow->b_ip,
                       flow->b_port)) {
        action = rule_action;
        break;
      }
    }
    if (action == FwAction::kDeny) {
      ++stats_.blocked_out;
      return false;
    }
    conntrack_.insert(*flow);
    ++stats_.allowed_out;
    return true;
  }

  // Inbound (outside -> inside): allow replies to tracked flows.
  const FlowKey reverse{flow->proto, flow->b_ip, flow->b_port, flow->a_ip,
                        flow->a_port};
  if (conntrack_.count(reverse) > 0) {
    ++stats_.allowed_in_established;
    return true;
  }
  for (const auto& rule : inbound_rules_) {
    if (rule.matches(flow->proto, flow->a_ip, flow->a_port, flow->b_ip,
                     flow->b_port)) {
      // Admit and track so the inside host's replies flow out statefully.
      conntrack_.insert(*flow);
      ++stats_.allowed_in_rule;
      return true;
    }
  }
  ++stats_.blocked_in;
  IPOP_LOG_DEBUG(name_ << ": blocked inbound " << flow->a_ip.to_string() << ":"
                       << flow->a_port << " -> " << flow->b_ip.to_string()
                       << ":" << flow->b_port);
  return false;
}

}  // namespace ipop::net
