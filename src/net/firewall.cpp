#include "net/firewall.hpp"

#include "net/l4_patch.hpp"
#include "util/logging.hpp"

namespace ipop::net {

Firewall::Firewall(sim::EventLoop& loop, std::string name, StackConfig scfg)
    : name_(std::move(name)), stack_(loop, name_, scfg) {
  stack_.set_forwarding(true);
  stack_.set_forward_hook(
      [this](const Ipv4Packet& pkt, std::size_t in_if, std::size_t out_if) {
        return filter(pkt, in_if, out_if);
      });
}

std::optional<Firewall::FlowKey> Firewall::flow_of(const Ipv4Packet& pkt) {
  // Shared view-based classification (net/l4_patch.hpp): the filter
  // reads ports/ids without ever copying the payload it only inspects.
  auto eps = l4_endpoints_of(pkt);
  if (!eps) return std::nullopt;
  return FlowKey{pkt.hdr.proto, eps->first.ip, eps->first.port,
                 eps->second.ip, eps->second.port};
}

bool Firewall::filter(const Ipv4Packet& pkt, std::size_t in_if,
                      std::size_t /*out_if*/) {
  auto flow = flow_of(pkt);
  if (!flow) return false;

  if (in_if == 0) {
    // Outbound (inside -> outside): first matching chain rule wins.
    FwAction action = outbound_default_;
    for (const auto& [rule_action, rule] : outbound_chain_) {
      if (rule.matches(flow->proto, flow->a_ip, flow->a_port, flow->b_ip,
                       flow->b_port)) {
        action = rule_action;
        break;
      }
    }
    if (action == FwAction::kDeny) {
      ++stats_.blocked_out;
      return false;
    }
    conntrack_.insert(*flow);
    ++stats_.allowed_out;
    return true;
  }

  // Inbound (outside -> inside): allow replies to tracked flows.
  const FlowKey reverse{flow->proto, flow->b_ip, flow->b_port, flow->a_ip,
                        flow->a_port};
  if (conntrack_.count(reverse) > 0) {
    ++stats_.allowed_in_established;
    return true;
  }
  for (const auto& rule : inbound_rules_) {
    if (rule.matches(flow->proto, flow->a_ip, flow->a_port, flow->b_ip,
                     flow->b_port)) {
      // Admit and track so the inside host's replies flow out statefully.
      conntrack_.insert(*flow);
      ++stats_.allowed_in_rule;
      return true;
    }
  }
  ++stats_.blocked_in;
  IPOP_LOG_DEBUG(name_ << ": blocked inbound " << flow->a_ip.to_string() << ":"
                       << flow->a_port << " -> " << flow->b_ip.to_string()
                       << ":" << flow->b_port);
  return false;
}

}  // namespace ipop::net
