// UDP datagram codec.
//
// Brunet's UDP transport mode (the configuration that wins the paper's WAN
// throughput comparison, Table III) and the NAT hole-punching protocol both
// ride on these datagrams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace ipop::net {

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 8;

  /// Checksum is emitted as 0 ("not computed"), which is legal for UDP
  /// over IPv4; frame integrity in the simulator is structural.
  std::vector<std::uint8_t> encode() const;
  static UdpDatagram decode(std::span<const std::uint8_t> bytes);

  /// Append the 8-byte header for a datagram carrying `payload_len`
  /// bytes (the single definition of the wire header, shared by encode()
  /// and the zero-copy socket path).
  static void encode_header(util::ByteWriter& w, std::uint16_t src_port,
                            std::uint16_t dst_port, std::size_t payload_len);
};

}  // namespace ipop::net
