// UDP datagram codec.
//
// Brunet's UDP transport mode (the configuration that wins the paper's WAN
// throughput comparison, Table III) and the NAT hole-punching protocol both
// ride on these datagrams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace ipop::net {

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 8;

  /// Checksum is emitted as 0 ("not computed"), which is legal for UDP
  /// over IPv4; frame integrity in the simulator is structural.
  std::vector<std::uint8_t> encode() const;
  /// Encode with a real pseudo-header checksum (0 is transmitted as
  /// 0xFFFF per RFC 768, since 0 means "no checksum").
  std::vector<std::uint8_t> encode(Ipv4Address src, Ipv4Address dst) const;
  /// Decode + validate: a nonzero checksum field is verified against the
  /// IPv4 pseudo-header; 0 = "no checksum" skips validation (RFC 768).
  /// Throws util::ParseError on truncation, bad length or bad checksum.
  static UdpDatagram decode(util::BufferView bytes, Ipv4Address src,
                            Ipv4Address dst);

  /// Write the 8-byte header (checksum 0) into a pre-sized slot — the
  /// single definition of the wire header, shared by encode() and the
  /// zero-copy socket path, which lays it into a buffer's headroom.
  static void write_header(std::uint8_t* out, std::uint16_t src_port,
                           std::uint16_t dst_port, std::size_t payload_len);
};

/// Zero-copy parsed UDP header: `payload` aliases the input view (trimmed
/// to the length field).  Structural checks only — middleboxes reading
/// ports must not drop on checksums they do not own; endpoint delivery
/// validates via UdpDatagram::decode or an explicit transport_checksum.
/// Field offsets are exposed so NAT can patch ports/checksum in place.
struct UdpView {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // header + payload bytes on the wire
  std::uint16_t checksum = 0;  // 0: not computed
  util::BufferView payload;

  static constexpr std::size_t kSrcPortOffset = 0;
  static constexpr std::size_t kDstPortOffset = 2;
  static constexpr std::size_t kLengthOffset = 4;
  static constexpr std::size_t kChecksumOffset = 6;

  /// Throws util::ParseError on truncation or a bad length field.
  static UdpView parse(util::BufferView bytes);
};

}  // namespace ipop::net
