// "traceroute" measurement tool over the simulated stack.
//
// Classic UDP traceroute: probes to high destination ports with
// increasing TTL; each hop on the path answers with an ICMP time-exceeded
// error, the destination itself with port-unreachable.  Exercises the
// middleboxes' ICMP-error translation end to end — a traceroute from a
// NAT'd host only sees hops beyond the box if the NAT rewrites the quoted
// packet inside each error back to the inside flow.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/stack.hpp"

namespace ipop::net {

struct TracerouteHop {
  int ttl = 0;
  /// Router (or destination) the error came from; unspecified on timeout.
  Ipv4Address from;
  /// True for the final hop (port-unreachable from the destination).
  bool reached = false;
  bool timed_out = false;
  double rtt_ms = 0.0;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool reached = false;
};

/// One traceroute run per instance; takes over the stack's ICMP error
/// handler for its duration.
class Traceroute {
 public:
  explicit Traceroute(Stack& stack) : stack_(stack) {}
  ~Traceroute();

  struct Options {
    int max_ttl = 16;
    util::Duration probe_timeout = util::seconds(1);
    /// Destination port of the first probe (one port per TTL, the
    /// classic 33434+ scheme — the quoted UDP header in each returned
    /// error identifies the probe).
    std::uint16_t base_port = 33434;
    std::uint16_t src_port = 44444;
  };

  void run(Ipv4Address dst, const Options& opts,
           std::function<void(TracerouteResult)> done);

 private:
  void send_probe();
  void on_error(Ipv4Address from, const IcmpMessage& msg);
  /// Record a hop; `stop` ends the trace (destination answered, or a
  /// mid-path unreachable further TTLs could not get past).
  void advance(TracerouteHop hop, bool stop);
  void finish();

  Stack& stack_;
  Options opts_;
  Ipv4Address dst_;
  std::function<void(TracerouteResult)> done_;
  TracerouteResult result_;
  /// The handler displaced by run(), reinstated on completion.
  Stack::IcmpErrorHandler saved_handler_;
  int ttl_ = 0;
  util::TimePoint probe_sent_at_{};
  std::uint64_t timeout_timer_ = 0;
  bool running_ = false;
};

}  // namespace ipop::net
