#include "net/icmp.hpp"

#include <algorithm>

namespace ipop::net {

util::Buffer IcmpMessage::encode_buffer(std::size_t headroom) const {
  auto buf =
      util::Buffer::allocate(IcmpView::kHeaderSize + payload.size(), headroom);
  std::uint8_t* p = buf.data();
  p[IcmpView::kTypeOffset] = static_cast<std::uint8_t>(type);
  p[IcmpView::kCodeOffset] = code;
  util::store_u16(p + IcmpView::kChecksumOffset, 0);  // placeholder
  util::store_u16(p + IcmpView::kIdOffset, id);
  util::store_u16(p + IcmpView::kSeqOffset, seq);
  // lint:allow(zero-copy): ICMP is control plane — echo payloads are built fresh, not forwarded
  std::copy(payload.begin(), payload.end(), p + IcmpView::kHeaderSize);
  util::store_u16(p + IcmpView::kChecksumOffset,
                  internet_checksum(buf.as_span()));
  return buf;
}

std::vector<std::uint8_t> IcmpMessage::encode() const {
  // lint:allow(zero-copy): legacy vector codec kept for tests; the data plane uses encode_buffer
  return encode_buffer(0).to_vector();
}

IcmpView IcmpView::parse_headers(util::BufferView bytes) {
  util::ByteReader r(bytes);
  IcmpView m;
  m.type = static_cast<IcmpType>(r.u8());
  m.code = r.u8();
  r.u16();  // checksum: validated by parse(), not here
  m.id = r.u16();
  m.seq = r.u16();
  m.payload = r.rest_view();
  return m;
}

IcmpView IcmpView::parse(util::BufferView bytes) {
  if (internet_checksum(bytes) != 0) {
    throw util::ParseError("bad ICMP checksum");
  }
  return parse_headers(bytes);
}

IcmpMessage IcmpMessage::decode(util::BufferView bytes) {
  IcmpView v = IcmpView::parse(bytes);
  IcmpMessage m;
  m.type = v.type;
  m.code = v.code;
  m.id = v.id;
  m.seq = v.seq;
  // lint:allow(zero-copy): legacy struct decode kept for tests; the data plane parses views
  m.payload = v.payload.to_vector();
  return m;
}

}  // namespace ipop::net
