#include "net/icmp.hpp"

namespace ipop::net {

std::vector<std::uint8_t> IcmpMessage::encode() const {
  util::ByteWriter w(8 + payload.size());
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.u16(id);
  w.u16(seq);
  w.bytes(payload);
  auto bytes = w.take();
  const std::uint16_t csum = internet_checksum(bytes);
  bytes[2] = static_cast<std::uint8_t>(csum >> 8);
  bytes[3] = static_cast<std::uint8_t>(csum);
  return bytes;
}

IcmpView IcmpView::parse(util::BufferView bytes) {
  if (internet_checksum(bytes) != 0) {
    throw util::ParseError("bad ICMP checksum");
  }
  util::ByteReader r(bytes);
  IcmpView m;
  m.type = static_cast<IcmpType>(r.u8());
  m.code = r.u8();
  r.u16();  // checksum already verified
  m.id = r.u16();
  m.seq = r.u16();
  m.payload = r.rest_view();
  return m;
}

IcmpMessage IcmpMessage::decode(util::BufferView bytes) {
  IcmpView v = IcmpView::parse(bytes);
  IcmpMessage m;
  m.type = v.type;
  m.code = v.code;
  m.id = v.id;
  m.seq = v.seq;
  m.payload = v.payload.to_vector();
  return m;
}

}  // namespace ipop::net
