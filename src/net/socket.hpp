// UDP socket bound to a simulated host stack.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/ipv4.hpp"
#include "util/buffer.hpp"

namespace ipop::net {

class Stack;

/// Connectionless datagram socket.  Delivery is callback-based: the stack
/// invokes the receive handler as datagrams arrive (after the simulated
/// kernel processing delay).
class UdpSocket : public std::enable_shared_from_this<UdpSocket> {
 public:
  using ReceiveHandler = std::function<void(
      Ipv4Address src, std::uint16_t src_port, std::vector<std::uint8_t> data)>;

  std::uint16_t port() const { return port_; }
  bool is_open() const { return stack_ != nullptr; }

  void set_receive_handler(ReceiveHandler h) { handler_ = std::move(h); }
  void send_to(Ipv4Address dst, std::uint16_t dst_port,
               std::vector<std::uint8_t> data);
  /// Shared-buffer variant: the datagram is built with exactly one copy of
  /// `data` (into the simulated kernel's owned packet), matching the copy
  /// a real sendto() performs at the user/kernel boundary.
  void send_to(Ipv4Address dst, std::uint16_t dst_port, util::Buffer data);
  /// Unbind from the stack; pending callbacks are dropped.
  void close();

  std::uint64_t datagrams_sent() const { return tx_; }
  std::uint64_t datagrams_received() const { return rx_; }

 private:
  friend class Stack;
  UdpSocket(Stack* stack, std::uint16_t port) : stack_(stack), port_(port) {}

  void deliver(Ipv4Address src, std::uint16_t src_port,
               std::vector<std::uint8_t> data);

  Stack* stack_;
  std::uint16_t port_;
  ReceiveHandler handler_;
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
};

}  // namespace ipop::net
