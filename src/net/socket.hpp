// UDP socket bound to a simulated host stack.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "util/buffer.hpp"
#include "util/buffer_chain.hpp"

namespace ipop::net {

class Stack;

/// One datagram of a sendmmsg-style batch: destination endpoint plus a
/// scatter-gather payload.  Chains let fan-out senders share one payload
/// buffer across every item while each item carries its own small header
/// segment.
struct UdpSendItem {
  Ipv4Address dst;
  std::uint16_t dst_port = 0;
  util::BufferChain payload;
};

/// Connectionless datagram socket.  Delivery is callback-based: the stack
/// invokes the receive handler as datagrams arrive (after the simulated
/// kernel processing delay).
class UdpSocket : public std::enable_shared_from_this<UdpSocket> {
 public:
  using ReceiveHandler = std::function<void(
      Ipv4Address src, std::uint16_t src_port, std::vector<std::uint8_t> data)>;
  /// Zero-copy variant: the payload arrives as a sub-buffer of the
  /// received frame (shared storage — clone before mutating if another
  /// holder may still read it).
  using BufferReceiveHandler = std::function<void(
      Ipv4Address src, std::uint16_t src_port, util::Buffer data)>;

  std::uint16_t port() const { return port_; }
  bool is_open() const { return stack_ != nullptr; }

  /// Owning-vector receive path: each datagram costs one payload copy at
  /// the kernel/user crossing (counted in StackCounters).
  void set_receive_handler(ReceiveHandler h) {
    handler_ = std::move(h);
    buf_handler_ = nullptr;
  }
  /// Shared-buffer receive path: delivery is a sub-buffer share, the copy
  /// the paper's Section V.2 proposes eliminating.
  void set_receive_handler(BufferReceiveHandler h) {
    buf_handler_ = std::move(h);
    handler_ = nullptr;
  }
  void send_to(Ipv4Address dst, std::uint16_t dst_port,
               std::vector<std::uint8_t> data);
  /// Shared-buffer variant: the 8-byte UDP header is prepended into the
  /// buffer's headroom, so a send costs zero payload copies (unless the
  /// storage is shared or cramped, which reallocates once).
  void send_to(Ipv4Address dst, std::uint16_t dst_port, util::Buffer data);
  /// Scatter-gather variant: a multi-segment chain is assembled by one
  /// NIC-style gather pass (StackCounters::payload_bytes_gathered), not
  /// per-layer CPU copies.
  void send_to(Ipv4Address dst, std::uint16_t dst_port,
               util::BufferChain data);
  /// sendmmsg-style batch: emit every item with a single socket-API
  /// crossing (one entry in StackCounters::udp_send_calls).  Items'
  /// payload chains are consumed.  Returns the number of datagrams
  /// emitted — 0 when the socket is closed or its stack is gone, so a
  /// batch pending across teardown is dropped instead of touching a dead
  /// handler or stack.
  std::size_t send_batch(std::span<UdpSendItem> items);
  /// Unbind from the stack; pending callbacks are dropped.
  void close();

  std::uint64_t datagrams_sent() const { return tx_; }
  std::uint64_t datagrams_received() const { return rx_; }

 private:
  friend class Stack;
  UdpSocket(Stack* stack, std::uint16_t port) : stack_(stack), port_(port) {}

  void deliver(Ipv4Address src, std::uint16_t src_port, util::Buffer data);
  /// Shared emission path of send_to/send_batch (post the per-call
  /// syscall accounting): build one datagram and hand it to the stack.
  void emit_datagram(Ipv4Address dst, std::uint16_t dst_port,
                     util::BufferChain payload);
  /// Called by ~Stack: unhook from the dying stack and drop the receive
  /// handlers, whose captures may hold the only shared_ptr cycle keeping
  /// this socket alive.
  void detach() {
    stack_ = nullptr;
    handler_ = nullptr;
    buf_handler_ = nullptr;
  }

  Stack* stack_;
  std::uint16_t port_;
  ReceiveHandler handler_;
  BufferReceiveHandler buf_handler_;
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
};

}  // namespace ipop::net
