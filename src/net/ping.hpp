// "ping" measurement tool over the simulated stack.
//
// Reproduces the paper's latency methodology: N ICMP echo round trips,
// reporting mean and standard deviation (Table I uses N=1000; Figure 5
// uses N=10000 with a histogram).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/stack.hpp"
#include "util/lifetime.hpp"
#include "util/stats.hpp"

namespace ipop::net {

/// Dispatches echo replies to the interested pinger by echo identifier so
/// multiple concurrent Pingers can share one stack.
class EchoReplyHandlerChain {
 public:
  /// Returns (creating on first use) the chain bound to `stack`; installs
  /// itself as the stack's echo-reply handler.
  static EchoReplyHandlerChain& for_stack(Stack& stack);

  using Handler = std::function<void(const IcmpMessage&)>;
  void add(std::uint16_t id, Handler h) { handlers_[id] = std::move(h); }
  void remove(std::uint16_t id) { handlers_.erase(id); }

 private:
  explicit EchoReplyHandlerChain(Stack& stack);
  std::unordered_map<std::uint16_t, Handler> handlers_;
};

struct PingResult {
  int sent = 0;
  int received = 0;
  /// Round-trip times in milliseconds for every received reply.
  util::Samples rtts_ms;

  double loss_fraction() const {
    return sent == 0 ? 0.0
                     : 1.0 - static_cast<double>(received) /
                                 static_cast<double>(sent);
  }
};

class Pinger {
 public:
  explicit Pinger(Stack& stack);
  ~Pinger();

  struct Options {
    int count = 10;
    Duration interval = util::seconds(1);
    /// Grace period after the last request before the run finalizes.
    Duration timeout = util::seconds(2);
    std::size_t payload_size = 56;  // classic ping default
  };

  /// Start pinging; `done` fires once after count requests + timeout.
  void run(Ipv4Address dst, const Options& opts,
           std::function<void(PingResult)> done);

 private:
  void send_next();
  void on_reply(const IcmpMessage& msg);
  void finish();

  Stack& stack_;
  std::uint16_t id_;
  Options opts_;
  Ipv4Address dst_;
  std::function<void(PingResult)> done_;
  PingResult result_;
  int next_seq_ = 0;
  // Declared last: interval/timeout timers outlive a Pinger torn down
  // mid-run (benches stack-allocate them), so every scheduled lambda
  // carries a guard instead of a bare `this`.
  util::AliveToken alive_;
};

}  // namespace ipop::net
