// TCP: connection state machine, sliding windows, Reno/NewReno congestion
// control, Jacobson/Karn RTO estimation.
//
// This is a from-scratch, event-driven TCP sufficient to reproduce the
// paper's transport behaviour: window-limited WAN throughput (Table III's
// physical baseline), Brunet's TCP edge mode, and the TCP-in-TCP
// interaction that makes IPOP-TCP slower than IPOP-UDP on the WAN.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "util/buffer_chain.hpp"
#include "util/time.hpp"

namespace ipop::net {

class Stack;
class TcpListener;

using util::Duration;
using util::TimePoint;

struct TcpConfig {
  std::size_t send_buf = 64 * 1024;
  std::size_t recv_buf = 64 * 1024;
  /// MSS is clamped to (egress MTU - 40) when the connection is created.
  std::size_t mss = 1460;
  Duration min_rto = util::milliseconds(200);
  Duration max_rto = util::seconds(60);
  Duration initial_rto = util::seconds(1);
  Duration time_wait = util::seconds(30);
  Duration persist_interval = util::milliseconds(500);
  int syn_retries = 6;
  /// Nagle's algorithm (RFC 896): hold sub-MSS segments while data is
  /// unacknowledged.  Off by default (most measurement tools set
  /// TCP_NODELAY); the Brunet TCP transport enables it to match the .NET
  /// socket default of the paper's prototype — the cause of Table III's
  /// TCP-mode WAN throughput collapse (tunneled inner ACKs are tiny
  /// writes that Nagle delays by one outer RTT).
  bool nagle = false;
};

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* tcp_state_name(TcpState s);

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;       // payload bytes, incl. retransmits
  std::uint64_t bytes_received = 0;   // in-order payload bytes
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_received = 0;
  /// Payload bytes memcpy'd at the send API (the user/kernel crossing):
  /// the span overload copies into a queue segment; the Buffer/chain
  /// overloads link shared handles instead and cost 0.
  std::uint64_t payload_bytes_copied = 0;
  /// Send-queue bytes gathered into segment wire images — the simulated
  /// NIC's scatter-gather walk (DMA descriptor work, not CPU copies).
  std::uint64_t payload_bytes_gathered = 0;
  /// Path-MTU discovery events: ICMP frag-needed shrank the MSS.
  std::uint64_t pmtu_shrinks = 0;
};

/// A TCP connection endpoint.  All I/O is callback-driven; see the on_*
/// members.  Obtain instances via Stack::tcp_connect or a TcpListener.
class TcpSocket : public std::enable_shared_from_this<TcpSocket> {
 public:
  /// Handshake completed (client side) or accepted (server side).
  std::function<void()> on_connected;
  /// Data (or EOF) available; call receive()/eof().
  std::function<void()> on_readable;
  /// Send-buffer space became available after being full.
  std::function<void()> on_writable;
  /// Connection fully closed or reset; `reason` is empty for a clean close.
  std::function<void(std::string reason)> on_closed;

  ~TcpSocket();

  /// Queue bytes for transmission; returns how many were accepted
  /// (bounded by send-buffer space).  This overload copies once into a
  /// fresh queue segment (counted in TcpStats::payload_bytes_copied).
  std::size_t send(std::span<const std::uint8_t> data);
  /// Zero-copy send: the buffer handle is linked into the send queue
  /// (bytes stay where they are until segments gather them for the
  /// wire).  Partial accepts link a sub-buffer share of the prefix.
  std::size_t send(util::Buffer data);
  /// writev-style scatter-gather send: every chain segment is linked
  /// into the send queue without copying.
  std::size_t send(util::BufferChain data);
  /// In-place variant: links the accepted prefix and drops it from
  /// `chain`, so a caller draining a backlog repeatedly pays no
  /// per-attempt handle copies (the unaccepted tail stays in `chain`).
  std::size_t send_from(util::BufferChain& chain);
  /// Take up to `max` bytes of in-order received data.
  std::vector<std::uint8_t> receive(std::size_t max);
  std::size_t bytes_readable() const { return recv_ready_.size(); }
  std::size_t send_space() const;
  /// True once the peer's FIN has been consumed (no more data will arrive).
  bool eof() const { return fin_received_ && recv_ready_.empty(); }

  /// Graceful close: flush queued data, then FIN.
  void close();
  /// Hard reset.
  void abort();

  TcpState state() const { return state_; }
  Ipv4Address local_ip() const { return local_ip_; }
  std::uint16_t local_port() const { return local_port_; }
  Ipv4Address remote_ip() const { return remote_ip_; }
  std::uint16_t remote_port() const { return remote_port_; }
  const TcpStats& stats() const { return stats_; }
  std::size_t cwnd() const { return cwnd_; }
  Duration srtt() const { return srtt_; }
  std::size_t mss() const { return cfg_.mss; }

 private:
  friend class Stack;
  friend class TcpListener;

  TcpSocket(Stack* stack, TcpConfig cfg);

  /// Called by ~Stack: cancel timers, unhook from the dying stack and
  /// drop the user callbacks, whose captures may hold the only
  /// shared_ptr cycle keeping this socket alive.
  void detach();

  void start_connect(Ipv4Address dst, std::uint16_t dst_port,
                     Ipv4Address src, std::uint16_t src_port);
  void start_accept(Ipv4Address local, std::uint16_t local_port,
                    Ipv4Address remote, std::uint16_t remote_port,
                    const TcpSegment& syn, TcpListener* listener);

  void on_segment(const TcpSegment& seg);

  // --- output path -------------------------------------------------------
  void output();  // transmit as much as windows allow
  void emit_segment(std::uint32_t seq, std::span<const std::uint8_t> payload,
                    TcpFlags flags);
  /// Data segment: payload bytes are gathered from [queue_offset,
  /// queue_offset+len) of the send queue directly into the wire image —
  /// no intermediate owning vector.
  void emit_data_segment(std::uint32_t seq, std::size_t queue_offset,
                         std::size_t len, TcpFlags flags);
  TcpSegment make_segment(std::uint32_t seq, TcpFlags flags);
  void emit_wire(util::Buffer seg_wire);
  void send_ack_now();
  void send_rst(std::uint32_t seq, std::uint32_t ack, bool with_ack);
  std::size_t flight_size() const;
  std::uint16_t advertised_window() const;

  // --- input path --------------------------------------------------------
  void process_ack(const TcpSegment& seg);
  void process_data(const TcpSegment& seg);
  /// ICMP frag-needed (code 4) for this connection: clamp the MSS to the
  /// reported next-hop MTU and resend the blackholed segment at the new
  /// size (RFC 1191 path-MTU discovery; not a congestion signal).
  void handle_frag_needed(std::size_t next_hop_mtu);
  void handle_accepted_fin();
  void enter_established();
  void maybe_send_fin();

  // --- timers ------------------------------------------------------------
  void arm_retransmit();
  void cancel_retransmit();
  void on_retransmit_timeout();
  void retransmit_front();
  void arm_persist();
  void on_persist_timeout();
  void enter_time_wait();
  void become_closed(const std::string& reason);

  // --- RTT estimation ----------------------------------------------------
  void sample_rtt(Duration rtt);
  Duration current_rto() const;

  Stack* stack_;
  TcpConfig cfg_;
  TcpState state_ = TcpState::kClosed;
  TcpListener* pending_listener_ = nullptr;

  Ipv4Address local_ip_;
  Ipv4Address remote_ip_;
  std::uint16_t local_port_ = 0;
  std::uint16_t remote_port_ = 0;

  // Send side.  snd_una_..snd_nxt_ is in flight; send_queue_ holds bytes
  // starting at sequence snd_una_ (after handshake).  The queue is a
  // scatter-gather chain: Buffer sends link shared handles, acked bytes
  // drop off the front, and segment emission gathers ranges straight
  // into the wire image.
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_wnd_ = 0;
  util::BufferChain send_queue_;
  bool fin_queued_ = false;  // close() called; FIN after data drains
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  int syn_attempts_ = 0;

  // Congestion control (Reno with NewReno partial-ack recovery).
  std::size_t cwnd_ = 0;
  std::size_t ssthresh_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;
  std::deque<std::uint8_t> recv_ready_;
  std::map<std::uint32_t, std::vector<std::uint8_t>> out_of_order_;
  std::size_t ooo_bytes_ = 0;
  bool fin_received_ = false;
  bool fin_acked_by_us_ = false;
  std::uint16_t last_advertised_window_ = 0;

  // RTT estimation (Jacobson/Karn).
  bool srtt_valid_ = false;
  Duration srtt_{};
  Duration rttvar_{};
  Duration rto_{};
  int backoff_ = 0;
  bool rtt_timing_ = false;
  std::uint32_t rtt_seq_ = 0;
  TimePoint rtt_sent_at_{};

  std::uint64_t retransmit_timer_ = 0;  // 0 = unarmed
  std::uint64_t persist_timer_ = 0;
  std::uint64_t time_wait_timer_ = 0;

  TcpStats stats_;
  bool send_buf_was_full_ = false;
  bool closed_notified_ = false;
};

/// Passive listener: accepts incoming connections on a port.
class TcpListener : public std::enable_shared_from_this<TcpListener> {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<TcpSocket>)>;

  void set_accept_handler(AcceptHandler h) { handler_ = std::move(h); }
  std::uint16_t port() const { return port_; }
  void close();

 private:
  friend class Stack;
  friend class TcpSocket;
  TcpListener(Stack* stack, std::uint16_t port, TcpConfig cfg)
      : stack_(stack), port_(port), cfg_(cfg) {}

  void handle_syn(Ipv4Address dst_ip, const TcpSegment& syn, Ipv4Address src);
  void connection_ready(std::shared_ptr<TcpSocket> sock);
  void detach() {
    stack_ = nullptr;
    handler_ = nullptr;
  }

  Stack* stack_;
  std::uint16_t port_;
  TcpConfig cfg_;
  AcceptHandler handler_;
};

}  // namespace ipop::net
