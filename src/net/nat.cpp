#include "net/nat.hpp"

#include "net/icmp.hpp"
#include "net/l4_patch.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"
#include "util/logging.hpp"

namespace ipop::net {

const char* nat_type_name(NatType t) {
  switch (t) {
    case NatType::kFullCone: return "full-cone";
    case NatType::kRestrictedCone: return "restricted-cone";
    case NatType::kPortRestrictedCone: return "port-restricted-cone";
    case NatType::kSymmetric: return "symmetric";
  }
  return "?";
}

NatBox::NatBox(sim::EventLoop& loop, std::string name, NatType type,
               StackConfig scfg, NatConfig ncfg)
    : name_(std::move(name)),
      stack_(loop, name_, scfg),
      type_(type),
      ncfg_(ncfg),
      next_ext_port_(ncfg.first_ext_port),
      sweeper_(loop, ncfg.sweep_interval, [this](util::TimePoint now) {
        expire_idle(now);
        return !mappings_.empty();
      }) {
  stack_.set_forwarding(true);
  stack_.set_prerouting_hook([this](Ipv4Packet& pkt, std::size_t in_iface) {
    if (in_iface == 1) return dnat(pkt, in_iface);
    return true;
  });
  stack_.set_postrouting_hook([this](Ipv4Packet& pkt, std::size_t out_iface) {
    if (out_iface == 1 && !stack_.is_local_ip(pkt.hdr.src)) {
      return snat(pkt, out_iface);
    }
    return true;
  });
}

NatBox::~NatBox() = default;

void NatBox::expire_idle(util::TimePoint now) {
  for (auto it = mappings_.begin(); it != mappings_.end();) {
    if (it->second.flow.expired(now, it->first.proto, ncfg_.timeouts)) {
      IPOP_LOG_DEBUG(name_ << ": expired mapping "
                           << it->second.inside.ip.to_string() << ":"
                           << it->second.inside.port << " (ext port "
                           << it->second.ext_port << ", "
                           << ct_tcp_state_name(it->second.flow.tcp) << ")");
      by_ext_port_.erase({it->first.proto, it->second.ext_port});
      --ext_ports_in_use_[it->first.proto];
      it = mappings_.erase(it);
      ++stats_.mappings_expired;
    } else {
      ++it;
    }
  }
}

CtTcpState NatBox::tcp_state_of(std::uint16_t ext_port) const {
  auto it = by_ext_port_.find({IpProto::kTcp, ext_port});
  if (it == by_ext_port_.end()) return CtTcpState::kNone;
  return mappings_.at(it->second).flow.tcp;
}

void NatBox::add_port_forward(IpProto proto, std::uint16_t ext_port,
                              L4Endpoint inside) {
  forwards_[{proto, ext_port}] = inside;
}

std::optional<L4Endpoint> NatBox::reflexive_endpoint(
    IpProto proto, const L4Endpoint& inside,
    std::optional<L4Endpoint> dst) const {
  for (const auto& [key, fwd_inside] : forwards_) {
    if (key.first == proto && fwd_inside == inside) {
      return Endpoint{external_ip(), key.second};
    }
  }
  MapKey key{proto, inside, std::nullopt};
  if (type_ == NatType::kSymmetric) key.dst = dst;
  auto it = mappings_.find(key);
  if (it == mappings_.end()) return std::nullopt;
  return Endpoint{external_ip(), it->second.ext_port};
}

std::uint16_t NatBox::alloc_ext_port(IpProto proto) {
  // Exhaustion fast path: without it, every packet of every unmapped
  // flow would re-scan the full port range once the space fills up.
  const std::size_t capacity = 65536u - ncfg_.first_ext_port;
  if (ext_ports_in_use_[proto] >= capacity) return 0;
  // Wrap within [first_ext_port, 65535], skipping ports whose mapping is
  // still live — a reclaimed port becomes allocatable again once its
  // mapping expires, and a wrapped counter can never alias a live one.
  for (int tries = 0; tries < 65536; ++tries) {
    // Invariant: next_ext_port_ stays in [first_ext_port, 65535] (the
    // wrap below resets it before the next read).
    const std::uint16_t p = next_ext_port_++;
    if (next_ext_port_ == 0) next_ext_port_ = ncfg_.first_ext_port;
    if (forwards_.find({proto, p}) != forwards_.end()) continue;
    if (by_ext_port_.find({proto, p}) == by_ext_port_.end()) return p;
  }
  return 0;
}

void NatBox::rewrite(Ipv4Packet& pkt, std::optional<Endpoint> new_src,
                     std::optional<Endpoint> new_dst) {
  stats_.rewrite_bytes_copied +=
      patch_l4_endpoints(pkt, std::move(new_src), std::move(new_dst));
}

void NatBox::track_tcp(Mapping& m, const Ipv4Packet& pkt, bool from_inside) {
  if (auto flags = tcp_flags_of(pkt)) {
    m.flow.on_tcp_flags(*flags, from_inside);
  }
}

NatBox::Mapping* NatBox::find_or_create(IpProto proto, const Endpoint& inside,
                                        const Endpoint& dst) {
  MapKey key{proto, inside, std::nullopt};
  if (type_ == NatType::kSymmetric) key.dst = dst;
  auto it = mappings_.find(key);
  if (it == mappings_.end()) {
    const std::uint16_t ext = alloc_ext_port(proto);
    if (ext == 0) {
      ++stats_.dropped_port_exhausted;
      return nullptr;
    }
    Mapping m;
    m.ext_port = ext;
    m.inside = inside;
    it = mappings_.emplace(key, std::move(m)).first;
    by_ext_port_[{proto, ext}] = key;
    ++ext_ports_in_use_[proto];
    sweeper_.ensure_armed();
    ++stats_.mappings_created;
    IPOP_LOG_DEBUG(name_ << ": new " << nat_type_name(type_) << " mapping "
                         << inside.ip.to_string() << ":" << inside.port
                         << " -> ext port " << it->second.ext_port);
  }
  it->second.flow.last_used = stack_.loop().now();
  return &it->second;
}

bool NatBox::snat(Ipv4Packet& pkt, std::size_t /*out_iface*/) {
  if (pkt.hdr.proto == IpProto::kIcmp) {
    if (auto q = icmp_error_quote(pkt)) return snat_icmp_error(pkt, *q);
  }
  auto eps = l4_endpoints_of(pkt);
  if (!eps) return false;  // untranslatable protocol: drop
  auto& [src, dst] = *eps;
  // A forwarded inside endpoint keeps its pinned external port so peers
  // see one consistent address in both directions (no dynamic mapping).
  for (const auto& [key, fwd_inside] : forwards_) {
    if (key.first == pkt.hdr.proto && fwd_inside == src) {
      try {
        rewrite(pkt, Endpoint{external_ip(), key.second}, std::nullopt);
      } catch (const util::ParseError&) {
        return false;
      }
      ++stats_.translated_out;
      return true;
    }
  }
  Mapping* m = find_or_create(pkt.hdr.proto, src, dst);
  if (m == nullptr) return false;  // external port space exhausted
  m->contacted.insert(dst);
  track_tcp(*m, pkt, /*from_inside=*/true);
  try {
    rewrite(pkt, Endpoint{external_ip(), m->ext_port}, std::nullopt);
  } catch (const util::ParseError&) {
    return false;
  }
  ++stats_.translated_out;
  return true;
}

bool NatBox::inbound_allowed(const Mapping& m, const Endpoint& remote,
                             IpProto proto) const {
  // ICMP echo has no remote port: the "port" slot carries the *local*
  // query identifier, so filtering can only be per remote IP (this is how
  // real NATs track ICMP queries).
  const bool ip_only = proto == IpProto::kIcmp;
  switch (type_) {
    case NatType::kFullCone:
      return true;
    case NatType::kRestrictedCone:
      for (const auto& c : m.contacted) {
        if (c.ip == remote.ip) return true;
      }
      return false;
    case NatType::kPortRestrictedCone:
    case NatType::kSymmetric:
      // Symmetric filtering reduces to port-restricted *within* the
      // per-destination mapping: only the exact destination was recorded.
      if (ip_only) {
        for (const auto& c : m.contacted) {
          if (c.ip == remote.ip) return true;
        }
        return false;
      }
      return m.contacted.count(remote) > 0;
  }
  return false;
}

bool NatBox::dnat(Ipv4Packet& pkt, std::size_t /*in_iface*/) {
  if (!stack_.is_local_ip(pkt.hdr.dst)) return true;  // not for our ext IP
  if (pkt.hdr.proto == IpProto::kIcmp) {
    if (auto q = icmp_error_quote(pkt)) return dnat_icmp_error(pkt, *q);
  }
  auto eps = l4_endpoints_of(pkt);
  if (!eps) return false;
  auto& [remote, ext] = *eps;
  auto fwd = forwards_.find({pkt.hdr.proto, ext.port});
  if (fwd != forwards_.end()) {
    try {
      rewrite(pkt, std::nullopt, fwd->second);
    } catch (const util::ParseError&) {
      return false;
    }
    ++stats_.port_forwarded_in;
    ++stats_.translated_in;
    return true;
  }
  auto key_it = by_ext_port_.find({pkt.hdr.proto, ext.port});
  if (key_it == by_ext_port_.end()) {
    ++stats_.blocked_in;
    return false;
  }
  Mapping& m = mappings_.at(key_it->second);
  if (!inbound_allowed(m, remote, pkt.hdr.proto)) {
    ++stats_.blocked_in;
    IPOP_LOG_DEBUG(name_ << ": blocked inbound from " << remote.ip.to_string()
                         << ":" << remote.port << " to ext port " << ext.port);
    return false;
  }
  try {
    rewrite(pkt, std::nullopt, m.inside);
  } catch (const util::ParseError&) {
    return false;
  }
  track_tcp(m, pkt, /*from_inside=*/false);
  m.flow.last_used = stack_.loop().now();
  ++stats_.translated_in;
  return true;
}

bool NatBox::dnat_icmp_error(Ipv4Packet& pkt, const IcmpQuoteView& q) {
  // The quote is the outbound packet as it left this box post-SNAT: its
  // source must be one of our external endpoints.  Match it back to the
  // mapping by external port.  Unlike regular inbound traffic the error
  // may legitimately come from *any* address on the path (an intermediate
  // router), so the related-flow admission skips the per-type address
  // filtering — this is what conntrack's RELATED state does.
  if (q.src_ip != external_ip()) {
    ++stats_.icmp_errors_orphaned;
    return false;
  }
  auto key_it = by_ext_port_.find({q.proto, q.src.port});
  if (key_it == by_ext_port_.end()) {
    ++stats_.icmp_errors_orphaned;
    return false;
  }
  Mapping& m = mappings_.at(key_it->second);
  // The quoted packet must be one the inside host actually sent: an
  // off-path forger who guessed a live external port still cannot name a
  // destination this mapping never contacted.  (For the symmetric type
  // this also pins the per-destination mapping.)  A quoted echo carries
  // the *rewritten* query id in its port slot, so — like inbound_allowed
  // — ICMP can only match per destination IP.
  bool contacted = false;
  if (q.proto == IpProto::kIcmp) {
    for (const auto& c : m.contacted) {
      if (c.ip == q.dst.ip) {
        contacted = true;
        break;
      }
    }
  } else {
    contacted = m.contacted.count(q.dst) > 0;
  }
  if (!contacted) {
    ++stats_.icmp_errors_orphaned;
    return false;
  }
  stats_.rewrite_bytes_copied += patch_icmp_quote_endpoint(
      pkt, q, /*src_side=*/true, m.inside,
      /*new_outer_src=*/std::nullopt, /*new_outer_dst=*/m.inside.ip);
  ++stats_.icmp_errors_translated_in;
  IPOP_LOG_DEBUG(name_ << ": translated inbound ICMP error for ext port "
                       << q.src.port << " back to "
                       << m.inside.ip.to_string() << ":" << m.inside.port);
  return true;
}

bool NatBox::snat_icmp_error(Ipv4Packet& pkt, const IcmpQuoteView& q) {
  // An inside host reporting on an inbound (post-DNAT) packet: the quote's
  // destination is the inside endpoint; restore the external view before
  // the error leaves.
  MapKey key{q.proto, q.dst, std::nullopt};
  if (type_ == NatType::kSymmetric) key.dst = q.src;
  auto it = mappings_.find(key);
  if (it == mappings_.end()) {
    ++stats_.icmp_errors_orphaned;
    return false;
  }
  const Endpoint ext{external_ip(), it->second.ext_port};
  stats_.rewrite_bytes_copied += patch_icmp_quote_endpoint(
      pkt, q, /*src_side=*/false, ext,
      /*new_outer_src=*/external_ip(), /*new_outer_dst=*/std::nullopt);
  ++stats_.icmp_errors_translated_out;
  return true;
}

}  // namespace ipop::net
