#include "net/nat.hpp"

#include "net/icmp.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"
#include "util/logging.hpp"

namespace ipop::net {

const char* nat_type_name(NatType t) {
  switch (t) {
    case NatType::kFullCone: return "full-cone";
    case NatType::kRestrictedCone: return "restricted-cone";
    case NatType::kPortRestrictedCone: return "port-restricted-cone";
    case NatType::kSymmetric: return "symmetric";
  }
  return "?";
}

NatBox::NatBox(sim::EventLoop& loop, std::string name, NatType type,
               StackConfig scfg)
    : name_(std::move(name)), stack_(loop, name_, scfg), type_(type) {
  stack_.set_forwarding(true);
  stack_.set_prerouting_hook([this](Ipv4Packet& pkt, std::size_t in_iface) {
    if (in_iface == 1) return dnat(pkt, in_iface);
    return true;
  });
  stack_.set_postrouting_hook([this](Ipv4Packet& pkt, std::size_t out_iface) {
    if (out_iface == 1 && !stack_.is_local_ip(pkt.hdr.src)) {
      return snat(pkt, out_iface);
    }
    return true;
  });
}

std::optional<std::pair<NatBox::Endpoint, NatBox::Endpoint>>
NatBox::endpoints_of(const Ipv4Packet& pkt) {
  try {
    switch (pkt.hdr.proto) {
      case IpProto::kUdp: {
        auto d = UdpDatagram::decode(pkt.payload);
        return {{Endpoint{pkt.hdr.src, d.src_port},
                 Endpoint{pkt.hdr.dst, d.dst_port}}};
      }
      case IpProto::kTcp: {
        // Ports are at fixed offsets; skip checksum validation here.
        util::ByteReader r(pkt.payload);
        const std::uint16_t sport = r.u16();
        const std::uint16_t dport = r.u16();
        return {{Endpoint{pkt.hdr.src, sport}, Endpoint{pkt.hdr.dst, dport}}};
      }
      case IpProto::kIcmp: {
        auto m = IcmpMessage::decode(pkt.payload);
        if (!m.is_echo()) return std::nullopt;
        return {{Endpoint{pkt.hdr.src, m.id}, Endpoint{pkt.hdr.dst, m.id}}};
      }
    }
  } catch (const util::ParseError&) {
  }
  return std::nullopt;
}

void NatBox::rewrite(Ipv4Packet& pkt, std::optional<Endpoint> new_src,
                     std::optional<Endpoint> new_dst) {
  switch (pkt.hdr.proto) {
    case IpProto::kUdp: {
      auto d = UdpDatagram::decode(pkt.payload);
      if (new_src) {
        pkt.hdr.src = new_src->ip;
        d.src_port = new_src->port;
      }
      if (new_dst) {
        pkt.hdr.dst = new_dst->ip;
        d.dst_port = new_dst->port;
      }
      pkt.payload = d.encode();
      break;
    }
    case IpProto::kTcp: {
      auto seg = TcpSegment::decode(pkt.payload, pkt.hdr.src, pkt.hdr.dst);
      if (new_src) {
        pkt.hdr.src = new_src->ip;
        seg.src_port = new_src->port;
      }
      if (new_dst) {
        pkt.hdr.dst = new_dst->ip;
        seg.dst_port = new_dst->port;
      }
      pkt.payload = seg.encode(pkt.hdr.src, pkt.hdr.dst);
      break;
    }
    case IpProto::kIcmp: {
      auto m = IcmpMessage::decode(pkt.payload);
      if (new_src) {
        pkt.hdr.src = new_src->ip;
        m.id = new_src->port;
      }
      if (new_dst) {
        pkt.hdr.dst = new_dst->ip;
        m.id = new_dst->port;
      }
      pkt.payload = m.encode();
      break;
    }
  }
}

NatBox::Mapping& NatBox::find_or_create(IpProto proto, const Endpoint& inside,
                                        const Endpoint& dst) {
  MapKey key{proto, inside, std::nullopt};
  if (type_ == NatType::kSymmetric) key.dst = dst;
  auto it = mappings_.find(key);
  if (it == mappings_.end()) {
    Mapping m;
    m.ext_port = next_ext_port_++;
    m.inside = inside;
    it = mappings_.emplace(key, std::move(m)).first;
    by_ext_port_[{proto, it->second.ext_port}] = key;
    ++stats_.mappings_created;
    IPOP_LOG_DEBUG(name_ << ": new " << nat_type_name(type_) << " mapping "
                         << inside.ip.to_string() << ":" << inside.port
                         << " -> ext port " << it->second.ext_port);
  }
  return it->second;
}

bool NatBox::snat(Ipv4Packet& pkt, std::size_t /*out_iface*/) {
  auto eps = endpoints_of(pkt);
  if (!eps) return false;  // untranslatable protocol: drop
  auto& [src, dst] = *eps;
  Mapping& m = find_or_create(pkt.hdr.proto, src, dst);
  m.contacted.insert(dst);
  rewrite(pkt, Endpoint{external_ip(), m.ext_port}, std::nullopt);
  ++stats_.translated_out;
  return true;
}

bool NatBox::inbound_allowed(const Mapping& m, const Endpoint& remote,
                             IpProto proto) const {
  // ICMP echo has no remote port: the "port" slot carries the *local*
  // query identifier, so filtering can only be per remote IP (this is how
  // real NATs track ICMP queries).
  const bool ip_only = proto == IpProto::kIcmp;
  switch (type_) {
    case NatType::kFullCone:
      return true;
    case NatType::kRestrictedCone:
      for (const auto& c : m.contacted) {
        if (c.ip == remote.ip) return true;
      }
      return false;
    case NatType::kPortRestrictedCone:
    case NatType::kSymmetric:
      // Symmetric filtering reduces to port-restricted *within* the
      // per-destination mapping: only the exact destination was recorded.
      if (ip_only) {
        for (const auto& c : m.contacted) {
          if (c.ip == remote.ip) return true;
        }
        return false;
      }
      return m.contacted.count(remote) > 0;
  }
  return false;
}

bool NatBox::dnat(Ipv4Packet& pkt, std::size_t /*in_iface*/) {
  if (!stack_.is_local_ip(pkt.hdr.dst)) return true;  // not for our ext IP
  auto eps = endpoints_of(pkt);
  if (!eps) return false;
  auto& [remote, ext] = *eps;
  auto key_it = by_ext_port_.find({pkt.hdr.proto, ext.port});
  if (key_it == by_ext_port_.end()) {
    ++stats_.blocked_in;
    return false;
  }
  const Mapping& m = mappings_.at(key_it->second);
  if (!inbound_allowed(m, remote, pkt.hdr.proto)) {
    ++stats_.blocked_in;
    IPOP_LOG_DEBUG(name_ << ": blocked inbound from " << remote.ip.to_string()
                         << ":" << remote.port << " to ext port " << ext.port);
    return false;
  }
  rewrite(pkt, std::nullopt, m.inside);
  ++stats_.translated_in;
  return true;
}

}  // namespace ipop::net
