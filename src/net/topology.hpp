// Experiment topologies.
//
// `Network` owns every simulation object (hosts, switches, links,
// middleboxes) so experiments are single-object RAII.  The builders
// recreate the paper's testbeds:
//
//  * build_fig4()      — the six-machine, three-site testbed of Figure 4:
//    ACIS private LAN (F1, F2, F4) behind a campus NAT, F4 dual-homed onto
//    the public campus network, F3 on a second campus LAN, V1 behind the
//    VIMS firewall and L1 behind the LSU firewall, joined by a ~10-hop WAN.
//  * build_planetlab() — a 118-node wide-area overlay substrate with
//    heavy-tailed CPU load at every node (Section IV-D / Figure 5).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/firewall.hpp"
#include "net/host.hpp"
#include "net/nat.hpp"
#include "net/stack.hpp"
#include "sim/engine.hpp"
#include "sim/switch.hpp"

namespace ipop::net {

/// Container/owner for one simulated internetwork.
///
/// The Network also feeds the sharded engine's planner: every host,
/// switch and middlebox registers as a graph vertex, every connect() call
/// records a link-graph edge with its delay, and plan_shards(n) partitions
/// the graph, re-homes all owned objects onto their shard loops and routes
/// cross-shard links through engine channels.  Build the physical
/// topology first, then plan, then construct the IPOP/overlay layer —
/// overlay objects arm timers at construction time and must land on their
/// final shard loop.  With plan_shards never called (or n == 1) everything
/// runs single-threaded on loop 0, exactly as before the engine refactor.
class Network {
 public:
  explicit Network(std::uint64_t seed = 42) : seed_(seed), rng_(seed) {}

  sim::ShardedEngine& engine() { return engine_; }
  /// Shard-0 loop: correct for all single-shard use and for pre-plan
  /// construction; sharded runs drive time via run_until()/run_for().
  sim::EventLoop& loop() { return engine_.loop(0); }
  util::Rng& rng() { return rng_; }

  /// Partition the registered topology into `n` shards (see class
  /// comment).  Call at most once, after the physical build, before any
  /// traffic or overlay construction.
  void plan_shards(std::size_t n);
  util::TimePoint now() const { return engine_.now(); }
  std::size_t run_until(util::TimePoint t) { return engine_.run_until(t); }
  std::size_t run_for(util::Duration d) { return engine_.run_for(d); }

  Host& add_host(const std::string& name, StackConfig scfg = {});
  /// A router is a forwarding host with a small (hardware-ish) per-packet
  /// processing delay.
  Host& add_router(const std::string& name);
  sim::Switch& add_switch(const std::string& name);
  NatBox& add_nat(const std::string& name, NatType type, StackConfig scfg = {},
                  NatConfig ncfg = {});
  Firewall& add_firewall(const std::string& name, StackConfig scfg = {},
                         FirewallConfig fwcfg = {});

  /// Wire `stack` to a switch with a new interface; returns the link.
  sim::Link& connect_to_switch(Stack& stack, const InterfaceConfig& icfg,
                               sim::Switch& sw, const sim::LinkConfig& lcfg);
  /// Point-to-point wire between two stacks (new interface on each).
  sim::Link& connect(Stack& a, const InterfaceConfig& ia, Stack& b,
                     const InterfaceConfig& ib, const sim::LinkConfig& lcfg);
  /// Create an unattached link; every link gets its pair of global
  /// delivery-stream ids from the creation index (partition-invariant).
  sim::Link& make_link(const sim::LinkConfig& lcfg, const std::string& name);

  Host* find_host(const std::string& name);

 private:
  /// Planner vertex for a stack's owner (lazily registered).
  sim::ShardedEngine::VertexId vertex_of(const Stack& stack);
  sim::ShardedEngine::VertexId vertex_of(const sim::Switch& sw);
  void record_link(sim::Link& link, sim::ShardedEngine::VertexId a,
                   sim::ShardedEngine::VertexId b, util::Duration delay);

  struct LinkBinding {
    sim::Link* link;
    sim::ShardedEngine::VertexId a, b;
  };

  std::uint64_t seed_;
  sim::ShardedEngine engine_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<sim::Switch>> switches_;
  std::vector<std::unique_ptr<NatBox>> nats_;
  std::vector<std::unique_ptr<Firewall>> firewalls_;
  std::vector<std::unique_ptr<sim::Link>> links_;
  std::unordered_map<const Stack*, sim::ShardedEngine::VertexId> stack_vertex_;
  std::unordered_map<const sim::Switch*, sim::ShardedEngine::VertexId>
      switch_vertex_;
  std::vector<LinkBinding> link_bindings_;
};

/// Knobs for the Figure-4 testbed; defaults are calibrated so the physical
/// ping/ttcp numbers land near the paper's Tables I-III baselines.
struct Fig4Options {
  /// Kernel per-packet cost on end hosts.
  util::Duration host_stack_delay = util::microseconds(30);
  /// Host-to-switch LAN latency (models VMware + switch path of the ACIS
  /// testbed; the paper's LAN RTT baseline is 0.6-0.9 ms).
  util::Duration lan_link_delay = util::microseconds(120);
  double lan_bw = 100e6;
  /// Per-WAN-hop propagation; 6 core hops + branches give ~17-19 ms one
  /// way (paper WAN RTT baseline 34.5-38.8 ms).
  util::Duration wan_hop_delay = util::milliseconds_f(2.8);
  util::Duration wan_jitter = util::microseconds(20);
  double wan_bw = 100e6;
  /// Random per-frame loss on each WAN hop (0 = clean).  The throughput
  /// benches use a small real value: loss is what differentiates
  /// TCP-in-TCP from TCP-in-UDP tunneling (Table III).
  double wan_loss = 0.0;
  /// Drop-tail queue per WAN hop.  Small queues make TCP's probing induce
  /// congestion drops — the regime where TCP-in-TCP melts down.
  std::size_t wan_queue_bytes = 256 * 1024;
  NatType campus_nat_type = NatType::kPortRestrictedCone;
  std::uint64_t seed = 42;
};

struct Fig4Testbed {
  std::unique_ptr<Network> net;

  Host* f1 = nullptr;  // ACIS private LAN, VM
  Host* f2 = nullptr;  // ACIS private LAN, physical
  Host* f3 = nullptr;  // separate UF LAN, public
  Host* f4 = nullptr;  // dual-homed: ACIS private + campus public
  Host* v1 = nullptr;  // VIMS, behind VFW
  Host* l1 = nullptr;  // LSU, behind LFW

  NatBox* campus_nat = nullptr;
  Firewall* vfw = nullptr;
  Firewall* lfw = nullptr;
  std::vector<Host*> wan_routers;

  // Physical addresses.
  Ipv4Address f1_ip, f2_ip, f3_ip, f4_lan_ip, f4_pub_ip, v1_ip, l1_ip;
};

Fig4Testbed build_fig4(const Fig4Options& opts = {});

struct PlanetLabOptions {
  int nodes = 118;
  double access_bw = 10e6;
  util::Duration min_access_delay = util::milliseconds(10);
  util::Duration max_access_delay = util::milliseconds(80);
  util::Duration access_jitter = util::milliseconds(2);
  /// Mean of the exponential CPU-load distribution.  The paper observed
  /// loads "in excess of 10" on the routing nodes.
  double cpu_load_mean = 10.0;
  /// Timeslice quantum for the loaded-host scheduling model (see
  /// sim::CpuScheduler::set_sched_quantum).
  util::Duration sched_quantum = util::milliseconds(60);
  util::Duration host_stack_delay = util::microseconds(30);
  std::uint64_t seed = 7;
};

struct PlanetLabTestbed {
  std::unique_ptr<Network> net;
  Host* core = nullptr;  // star hub standing in for the Internet core
  std::vector<Host*> hosts;
  std::vector<Ipv4Address> ips;
};

PlanetLabTestbed build_planetlab(const PlanetLabOptions& opts = {});

}  // namespace ipop::net
