#include "net/traceroute.hpp"

#include "net/l4_patch.hpp"
#include "net/udp.hpp"

namespace ipop::net {

Traceroute::~Traceroute() {
  if (running_) {
    stack_.set_icmp_error_handler(std::move(saved_handler_));
    if (timeout_timer_ != 0) stack_.loop().cancel(timeout_timer_);
  }
}

void Traceroute::run(Ipv4Address dst, const Options& opts,
                     std::function<void(TracerouteResult)> done) {
  opts_ = opts;
  dst_ = dst;
  done_ = std::move(done);
  result_ = {};
  ttl_ = 0;
  running_ = true;
  saved_handler_ = stack_.icmp_error_handler();
  stack_.set_icmp_error_handler(
      [this](Ipv4Address from, const IcmpMessage& msg) {
        on_error(from, msg);
      });
  send_probe();
}

void Traceroute::send_probe() {
  ++ttl_;
  UdpDatagram d;
  d.src_port = opts_.src_port;
  d.dst_port = static_cast<std::uint16_t>(opts_.base_port + ttl_ - 1);
  d.payload = {0x74, 0x72};  // "tr"
  Ipv4Packet pkt;
  pkt.hdr.proto = IpProto::kUdp;
  pkt.hdr.ttl = static_cast<std::uint8_t>(ttl_);
  pkt.hdr.dst = dst_;
  // Checksum 0 ("not computed", RFC 768): every translated error quote
  // along a NAT'd path must leave it zero.
  pkt.payload = util::Buffer::wrap(d.encode());
  probe_sent_at_ = stack_.loop().now();
  timeout_timer_ =
      stack_.loop().schedule_after(opts_.probe_timeout, [this] {
        timeout_timer_ = 0;
        advance(TracerouteHop{ttl_, {}, false, /*timed_out=*/true, 0.0},
                /*stop=*/false);
      });
  stack_.send_ip(std::move(pkt));
}

void Traceroute::on_error(Ipv4Address from, const IcmpMessage& msg) {
  if (!running_ || !msg.is_error()) return;
  // Match the probe through the quoted UDP header (original IP header +
  // 8 payload bytes, RFC 792).
  auto q = parse_ipv4_quote(msg.payload);
  if (!q || q->proto != IpProto::kUdp || q->dst.ip != dst_ ||
      q->src.port != opts_.src_port ||
      q->dst.port != opts_.base_port + ttl_ - 1) {
    return;  // stale or foreign error
  }
  // Only the destination's port-unreachable (code 3) means "reached";
  // a mid-path network/host-unreachable (classic !N/!H) still ends the
  // trace — further TTLs would hit the same wall — but must not claim
  // the destination answered.
  const bool unreachable = msg.type == IcmpType::kDestUnreachable;
  const bool reached = unreachable && msg.code == 3;
  if (timeout_timer_ != 0) {
    stack_.loop().cancel(timeout_timer_);
    timeout_timer_ = 0;
  }
  advance(
      TracerouteHop{ttl_, from, reached, false,
                    util::to_milliseconds(stack_.loop().now() -
                                          probe_sent_at_)},
      /*stop=*/unreachable);
}

void Traceroute::advance(TracerouteHop hop, bool stop) {
  result_.hops.push_back(hop);
  if (hop.reached) result_.reached = true;
  if (stop || ttl_ >= opts_.max_ttl) {
    finish();
    return;
  }
  send_probe();
}

void Traceroute::finish() {
  running_ = false;
  stack_.set_icmp_error_handler(std::move(saved_handler_));
  if (done_) done_(std::move(result_));
}

}  // namespace ipop::net
