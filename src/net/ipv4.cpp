#include "net/ipv4.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace ipop::net {

Ipv4Address Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  int parts = 0;
  std::size_t pos = 0;
  while (parts < 4) {
    std::size_t dot = text.find('.', pos);
    std::string_view part = (dot == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, dot - pos);
    unsigned octet = 256;
    auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255) {
      throw util::ParseError("bad IPv4 address: " + std::string(text));
    }
    value = (value << 8) | octet;
    ++parts;
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  if (parts != 4) {
    throw util::ParseError("bad IPv4 address: " + std::string(text));
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value >> 24,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view cidr) {
  std::size_t slash = cidr.find('/');
  if (slash == std::string_view::npos) {
    throw util::ParseError("bad CIDR (no slash): " + std::string(cidr));
  }
  Ipv4Prefix p;
  p.network = Ipv4Address::parse(cidr.substr(0, slash));
  auto lenpart = cidr.substr(slash + 1);
  int len = -1;
  auto [ptr, ec] =
      std::from_chars(lenpart.data(), lenpart.data() + lenpart.size(), len);
  if (ec != std::errc{} || ptr != lenpart.data() + lenpart.size() || len < 0 ||
      len > 32) {
    throw util::ParseError("bad CIDR length: " + std::string(cidr));
  }
  p.length = len;
  return p;
}

std::string Ipv4Prefix::to_string() const {
  return network.to_string() + "/" + std::to_string(length);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i] << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 IpProto proto,
                                 std::span<const std::uint8_t> segment) {
  util::ByteWriter w(12 + segment.size());
  w.u32(src.value);
  w.u32(dst.value);
  w.u8(0);
  w.u8(static_cast<std::uint8_t>(proto));
  w.u16(static_cast<std::uint16_t>(segment.size()));
  w.bytes(segment);
  return internet_checksum(w.data());
}

std::uint16_t checksum_update(std::uint16_t csum, std::uint16_t old_word,
                              std::uint16_t new_word) {
  // HC' = ~(~HC + ~m + m'), folded back to 16 bits.
  std::uint32_t sum = static_cast<std::uint16_t>(~csum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Packet::encode_header(std::uint8_t* out, const Ipv4Header& hdr,
                               std::size_t total_len) {
  out[0] = 0x45;  // version 4, IHL 5 (no options)
  out[1] = hdr.tos;
  util::store_u16(out + 2, static_cast<std::uint16_t>(total_len));
  util::store_u16(out + 4, hdr.id);
  util::store_u16(out + 6, 0x4000);  // DF, fragment offset 0
  out[8] = hdr.ttl;
  out[9] = static_cast<std::uint8_t>(hdr.proto);
  util::store_u16(out + 10, 0);  // checksum placeholder
  util::store_u32(out + 12, hdr.src.value);
  util::store_u32(out + 16, hdr.dst.value);
  util::store_u16(out + 10, internet_checksum(std::span<const std::uint8_t>(
                                out, Ipv4Header::kSize)));
}

std::vector<std::uint8_t> Ipv4Packet::encode() const {
  std::vector<std::uint8_t> bytes(total_length());
  encode_header(bytes.data(), hdr, total_length());
  // lint:allow(zero-copy): legacy vector codec kept for tests; the data plane uses take_wire()
  std::copy(payload.begin(), payload.end(),
            bytes.begin() + Ipv4Header::kSize);
  return bytes;
}

util::Buffer Ipv4Packet::take_wire() {
  util::Buffer wire = std::move(payload);
  const std::size_t total = Ipv4Header::kSize + wire.size();
  auto slot = wire.grow_front(Ipv4Header::kSize);
  encode_header(slot.data(), hdr, total);
  return wire;
}

Ipv4View Ipv4View::parse(util::BufferView bytes) {
  util::ByteReader r(bytes);
  Ipv4View p;
  const std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) throw util::ParseError("not IPv4");
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0F) * 4;
  if (ihl != Ipv4Header::kSize) {
    throw util::ParseError("IPv4 options unsupported");
  }
  p.hdr.tos = r.u8();
  const std::uint16_t total_len = r.u16();
  if (total_len < Ipv4Header::kSize || total_len > bytes.size()) {
    throw util::ParseError("bad IPv4 total length");
  }
  p.hdr.id = r.u16();
  const std::uint16_t frag = r.u16();
  if ((frag & 0x1FFF) != 0 || (frag & 0x2000) != 0) {
    throw util::ParseError("IPv4 fragmentation unsupported");
  }
  p.hdr.ttl = r.u8();
  p.hdr.proto = static_cast<IpProto>(r.u8());
  r.u16();  // checksum validated over the raw header below
  p.hdr.src = Ipv4Address(r.u32());
  p.hdr.dst = Ipv4Address(r.u32());
  if (internet_checksum(bytes.subview(0, Ipv4Header::kSize)) != 0) {
    throw util::ParseError("bad IPv4 header checksum");
  }
  p.payload = r.view_bytes(total_len - Ipv4Header::kSize);
  return p;
}

Ipv4Packet Ipv4Packet::decode(util::BufferView bytes) {
  Ipv4View v = Ipv4View::parse(bytes);
  Ipv4Packet p;
  p.hdr = v.hdr;
  // lint:allow(zero-copy): span-entry API edge — receive path adopts the frame via decode(Buffer) instead
  p.payload = util::Buffer::copy_of(v.payload, util::kPacketHeadroom);
  return p;
}

Ipv4Packet Ipv4Packet::decode(util::Buffer bytes) {
  Ipv4View v = Ipv4View::parse(bytes.view());
  Ipv4Packet p;
  p.hdr = v.hdr;
  // Trim link padding off the back, turn the consumed header into
  // headroom, and adopt the storage: no payload bytes move.
  bytes.drop_back(bytes.size() - Ipv4Header::kSize - v.payload.size());
  bytes.drop_front(Ipv4Header::kSize);
  p.payload = std::move(bytes);
  return p;
}

}  // namespace ipop::net
