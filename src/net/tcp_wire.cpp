#include "net/tcp_wire.hpp"

namespace ipop::net {

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += "SYN,";
  if (ack) s += "ACK,";
  if (fin) s += "FIN,";
  if (rst) s += "RST,";
  if (psh) s += "PSH,";
  if (!s.empty()) s.pop_back();
  return s.empty() ? "-" : s;
}

std::vector<std::uint8_t> TcpSegment::encode(Ipv4Address src_ip,
                                             Ipv4Address dst_ip) const {
  util::ByteWriter w(kHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(5 << 4);  // data offset 5 words, no options
  w.u8(flags.encode());
  w.u16(window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.bytes(payload);
  auto bytes = w.take();
  const std::uint16_t csum =
      transport_checksum(src_ip, dst_ip, IpProto::kTcp, bytes);
  bytes[16] = static_cast<std::uint8_t>(csum >> 8);
  bytes[17] = static_cast<std::uint8_t>(csum);
  return bytes;
}

TcpSegment TcpSegment::decode(std::span<const std::uint8_t> bytes,
                              Ipv4Address src_ip, Ipv4Address dst_ip) {
  if (transport_checksum(src_ip, dst_ip, IpProto::kTcp, bytes) != 0) {
    throw util::ParseError("bad TCP checksum");
  }
  util::ByteReader r(bytes);
  TcpSegment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  const std::uint8_t offset_words = r.u8() >> 4;
  if (offset_words < 5) throw util::ParseError("bad TCP data offset");
  s.flags = TcpFlags::decode(r.u8());
  s.window = r.u16();
  r.u16();  // checksum verified above
  r.u16();  // urgent pointer ignored
  const std::size_t header_len = static_cast<std::size_t>(offset_words) * 4;
  if (header_len > bytes.size()) throw util::ParseError("TCP header too long");
  if (header_len > kHeaderSize) r.skip(header_len - kHeaderSize);
  s.payload = r.rest_copy();
  return s;
}

}  // namespace ipop::net
