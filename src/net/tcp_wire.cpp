#include "net/tcp_wire.hpp"

#include <algorithm>

namespace ipop::net {

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += "SYN,";
  if (ack) s += "ACK,";
  if (fin) s += "FIN,";
  if (rst) s += "RST,";
  if (psh) s += "PSH,";
  if (!s.empty()) s.pop_back();
  return s.empty() ? "-" : s;
}

namespace {

/// Header bytes (checksum slot zeroed) into a pre-sized 20-byte slot —
/// the single wire-header definition shared by the copying and gathering
/// encoders.
void write_tcp_header(std::uint8_t* p, const TcpSegment& seg) {
  util::store_u16(p, seg.src_port);
  util::store_u16(p + 2, seg.dst_port);
  util::store_u32(p + 4, seg.seq);
  util::store_u32(p + 8, seg.ack);
  p[12] = 5 << 4;  // data offset 5 words, no options
  p[13] = seg.flags.encode();
  util::store_u16(p + 14, seg.window);
  util::store_u16(p + 16, 0);  // checksum placeholder
  util::store_u16(p + 18, 0);  // urgent pointer
}

}  // namespace

util::Buffer TcpSegment::encode_buffer(Ipv4Address src_ip, Ipv4Address dst_ip,
                                       std::size_t headroom) const {
  auto buf = util::Buffer::allocate(kHeaderSize + payload.size(), headroom);
  std::uint8_t* p = buf.data();
  write_tcp_header(p, *this);
  // lint:allow(zero-copy): struct-form serializer for handshake/test segments; data rides encode_gather
  std::copy(payload.begin(), payload.end(), p + kHeaderSize);
  util::store_u16(p + TcpView::kChecksumOffset,
                  transport_checksum(src_ip, dst_ip, IpProto::kTcp,
                                     buf.as_span()));
  return buf;
}

util::Buffer TcpSegment::encode_gather(Ipv4Address src_ip, Ipv4Address dst_ip,
                                       std::size_t headroom,
                                       const util::BufferChain& queue,
                                       std::size_t offset,
                                       std::size_t len) const {
  auto buf = util::Buffer::allocate(kHeaderSize + len, headroom);
  std::uint8_t* p = buf.data();
  write_tcp_header(p, *this);
  queue.gather(offset, buf.writable().subspan(kHeaderSize));
  util::store_u16(p + TcpView::kChecksumOffset,
                  transport_checksum(src_ip, dst_ip, IpProto::kTcp,
                                     buf.as_span()));
  return buf;
}

std::vector<std::uint8_t> TcpSegment::encode(Ipv4Address src_ip,
                                             Ipv4Address dst_ip) const {
  // lint:allow(zero-copy): legacy vector codec kept for tests; the data plane uses encode_gather
  return encode_buffer(src_ip, dst_ip, 0).to_vector();
}

TcpView TcpView::parse(util::BufferView bytes) {
  util::ByteReader r(bytes);
  TcpView v;
  v.src_port = r.u16();
  v.dst_port = r.u16();
  v.seq = r.u32();
  v.ack = r.u32();
  const std::uint8_t offset_words = r.u8() >> 4;
  if (offset_words < 5) throw util::ParseError("bad TCP data offset");
  v.flags = TcpFlags::decode(r.u8());
  v.window = r.u16();
  v.checksum = r.u16();
  r.u16();  // urgent pointer ignored
  const std::size_t header_len = static_cast<std::size_t>(offset_words) * 4;
  if (header_len > bytes.size()) throw util::ParseError("TCP header too long");
  if (header_len > TcpSegment::kHeaderSize) {
    r.skip(header_len - TcpSegment::kHeaderSize);
  }
  v.payload = r.rest_view();
  return v;
}

TcpSegment TcpSegment::decode(std::span<const std::uint8_t> bytes,
                              Ipv4Address src_ip, Ipv4Address dst_ip) {
  if (transport_checksum(src_ip, dst_ip, IpProto::kTcp, bytes) != 0) {
    throw util::ParseError("bad TCP checksum");
  }
  TcpView v = TcpView::parse(bytes);
  TcpSegment s;
  s.src_port = v.src_port;
  s.dst_port = v.dst_port;
  s.seq = v.seq;
  s.ack = v.ack;
  s.flags = v.flags;
  s.window = v.window;
  // lint:allow(zero-copy): legacy struct decode kept for tests; the data plane parses views
  s.payload = v.payload.to_vector();
  return s;
}

}  // namespace ipop::net
