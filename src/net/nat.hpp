// NAT middlebox implementing the four NAT types of RFC 3489 (STUN).
//
// The paper's NAT-traversal argument (Section III-D) rests on two observed
// facts: (1) every NAT lets responses from (B,pb) back in after an
// outbound packet to (B,pb); (2) all but the symmetric type keep one
// external port per internal (IP,port) regardless of destination.  This
// middlebox reproduces those behaviours exactly, so Brunet's decentralized
// traversal (translated-address discovery + simultaneous dialing) can be
// demonstrated and property-tested against every NAT type.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/stack.hpp"

namespace ipop::net {

enum class NatType {
  kFullCone,
  kRestrictedCone,
  kPortRestrictedCone,
  kSymmetric,
};

const char* nat_type_name(NatType t);

struct NatStats {
  std::uint64_t mappings_created = 0;
  std::uint64_t translated_out = 0;
  std::uint64_t translated_in = 0;
  std::uint64_t blocked_in = 0;
};

/// Two-interface NAT router.  Interface 0 must be the inside (private)
/// side, interface 1 the outside (public) side; attach them via the
/// topology helpers before starting traffic.
class NatBox {
 public:
  NatBox(sim::EventLoop& loop, std::string name, NatType type,
         StackConfig scfg = {});

  Stack& stack() { return stack_; }
  NatType type() const { return type_; }
  const NatStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// The external address used for translations (outside interface IP).
  Ipv4Address external_ip() const { return stack_.interface_ip(1); }

 private:
  // Endpoint = (ip, port); for ICMP echo, port is the echo identifier.
  struct Endpoint {
    Ipv4Address ip;
    std::uint16_t port = 0;
    auto operator<=>(const Endpoint&) const = default;
  };
  struct MapKey {
    IpProto proto;
    Endpoint inside;
    // Populated only for symmetric NAT: one mapping per destination.
    std::optional<Endpoint> dst;
    auto operator<=>(const MapKey&) const = default;
  };
  struct Mapping {
    std::uint16_t ext_port = 0;
    Endpoint inside;
    // Destinations this internal endpoint has sent to (for the cone
    // filtering rules).
    std::set<Endpoint> contacted;
  };

  bool snat(Ipv4Packet& pkt, std::size_t out_iface);
  bool dnat(Ipv4Packet& pkt, std::size_t in_iface);
  bool inbound_allowed(const Mapping& m, const Endpoint& remote,
                       IpProto proto) const;
  Mapping& find_or_create(IpProto proto, const Endpoint& inside,
                          const Endpoint& dst);

  /// Extract (src,dst) transport endpoints; nullopt for unsupported proto.
  static std::optional<std::pair<Endpoint, Endpoint>> endpoints_of(
      const Ipv4Packet& pkt);
  /// Rewrite source or destination endpoint, fixing checksums.
  static void rewrite(Ipv4Packet& pkt, std::optional<Endpoint> new_src,
                      std::optional<Endpoint> new_dst);

  std::string name_;
  Stack stack_;
  NatType type_;
  NatStats stats_;
  std::map<MapKey, Mapping> mappings_;
  std::map<std::pair<IpProto, std::uint16_t>, MapKey> by_ext_port_;
  std::uint16_t next_ext_port_ = 1024;
};

}  // namespace ipop::net
