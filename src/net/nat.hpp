// NAT middlebox implementing the four NAT types of RFC 3489 (STUN).
//
// The paper's NAT-traversal argument (Section III-D) rests on two observed
// facts: (1) every NAT lets responses from (B,pb) back in after an
// outbound packet to (B,pb); (2) all but the symmetric type keep one
// external port per internal (IP,port) regardless of destination.  This
// middlebox reproduces those behaviours exactly, so Brunet's decentralized
// traversal (translated-address discovery + simultaneous dialing) can be
// demonstrated and property-tested against every NAT type.
//
// Translations patch ports/ids and checksums in place in the packet's
// shared buffer (net/l4_patch.hpp) — a forwarded packet crosses the box
// with zero payload copies.  Mapping lifetime is connection-tracked
// (net/conntrack.hpp): UDP and ICMP age on idle timers, TCP follows the
// observed SYN/FIN/RST lifecycle — short budgets for half-open and
// closing flows, a long one for established connections — and a periodic
// sweep reclaims dead entries together with their external ports, so a
// long-lived box neither grows without bound nor wraps its port counter
// into stale by-external-port state.
//
// ICMP errors generated beyond the box (TTL exceeded, port unreachable,
// frag needed) are translated back to the inside host by parsing the
// quoted original packet out of the error, matching it to a live mapping
// and rewriting both the outer header and the embedded quote in place —
// traceroute and path-MTU discovery work across the NAT.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/conntrack.hpp"
#include "net/l4_patch.hpp"
#include "net/stack.hpp"

namespace ipop::net {

enum class NatType {
  kFullCone,
  kRestrictedCone,
  kPortRestrictedCone,
  kSymmetric,
};

const char* nat_type_name(NatType t);

struct NatConfig {
  /// Per-protocol / per-TCP-state mapping lifetimes.  A mapping idle past
  /// its budget is reclaimed together with its external port.
  ConntrackTimeouts timeouts;
  /// Cadence of the reclamation sweep.
  util::Duration sweep_interval = util::seconds(10);
  /// First external port handed out; allocation wraps within
  /// [first_ext_port, 65535], skipping ports still mapped.
  std::uint16_t first_ext_port = 1024;
};

struct NatStats {
  std::uint64_t mappings_created = 0;
  std::uint64_t mappings_expired = 0;
  std::uint64_t translated_out = 0;
  std::uint64_t translated_in = 0;
  std::uint64_t blocked_in = 0;
  std::uint64_t dropped_port_exhausted = 0;
  /// Inbound packets admitted by a static port-forward pinhole.
  std::uint64_t port_forwarded_in = 0;
  /// ICMP errors whose embedded quote matched a live mapping and was
  /// rewritten back to the inside (in) / out to the public side (out).
  std::uint64_t icmp_errors_translated_in = 0;
  std::uint64_t icmp_errors_translated_out = 0;
  /// ICMP errors quoting no live mapping (dropped).
  std::uint64_t icmp_errors_orphaned = 0;
  /// Payload bytes copied by rewrites: 0 on the unicast fast path (ports
  /// are patched in place); copy-on-write on shared storage counts here.
  std::uint64_t rewrite_bytes_copied = 0;
};

/// Two-interface NAT router.  Interface 0 must be the inside (private)
/// side, interface 1 the outside (public) side; attach them via the
/// topology helpers before starting traffic.
class NatBox {
 public:
  NatBox(sim::EventLoop& loop, std::string name, NatType type,
         StackConfig scfg = {}, NatConfig ncfg = {});
  ~NatBox();

  NatBox(const NatBox&) = delete;
  NatBox& operator=(const NatBox&) = delete;

  Stack& stack() { return stack_; }
  /// Re-home onto a shard loop (engine planning).
  void rebind(sim::EventLoop& loop) {
    stack_.rebind(loop);
    sweeper_.rebind(loop);
  }
  NatType type() const { return type_; }
  const NatStats& stats() const { return stats_; }
  const NatConfig& config() const { return ncfg_; }
  const std::string& name() const { return name_; }

  /// The external address used for translations (outside interface IP).
  Ipv4Address external_ip() const { return stack_.interface_ip(1); }

  /// Static port forward (the home-router "DMZ pinhole"): inbound
  /// traffic to external `ext_port` is rewritten to `inside`
  /// unconditionally — no prior outbound packet and no per-type address
  /// filtering — and outbound traffic from `inside` leaves from the same
  /// external port.  This is how a NATed overlay bootstrap node is made
  /// reachable; the pinhole behaves full-cone for that port regardless
  /// of the box's configured type.
  void add_port_forward(IpProto proto, std::uint16_t ext_port,
                        L4Endpoint inside);

  /// Reflexive-mapping observability: the external endpoint a peer would
  /// see for `inside` traffic (toward `dst`, which only matters for the
  /// symmetric type's per-destination mappings).  Consults port forwards
  /// first, then live conntrack mappings; nullopt when neither exists.
  /// Lets tests and the hostile soak verify what the overlay's STUN-style
  /// discovery reported against ground truth.
  std::optional<L4Endpoint> reflexive_endpoint(
      IpProto proto, const L4Endpoint& inside,
      std::optional<L4Endpoint> dst = std::nullopt) const;

  /// Live translation entries (bounded by the conntrack sweep).
  std::size_t mapping_count() const { return mappings_.size(); }
  /// Tracked TCP state of the mapping holding `ext_port`, for tests and
  /// introspection; kNone for unmapped ports and non-TCP mappings.
  CtTcpState tcp_state_of(std::uint16_t ext_port) const;
  /// Drop mappings idle past their conntrack budget, releasing their
  /// external ports.  Runs on a periodic timer; exposed for tests.
  void expire_idle(util::TimePoint now);

 private:
  // (ip, port); for ICMP echo, port is the echo identifier.
  using Endpoint = L4Endpoint;
  struct MapKey {
    IpProto proto;
    Endpoint inside;
    // Populated only for symmetric NAT: one mapping per destination.
    std::optional<Endpoint> dst;
    auto operator<=>(const MapKey&) const = default;
  };
  struct Mapping {
    std::uint16_t ext_port = 0;
    Endpoint inside;
    // Destinations this internal endpoint has sent to (for the cone
    // filtering rules).
    std::set<Endpoint> contacted;
    // TCP lifecycle + last-used time; drives per-state expiry.
    CtFlow flow;
  };

  bool snat(Ipv4Packet& pkt, std::size_t out_iface);
  bool dnat(Ipv4Packet& pkt, std::size_t in_iface);
  /// Translate an ICMP error crossing inward (outer dst = external IP):
  /// match the quoted source endpoint to a mapping by external port and
  /// rewrite outer dst + embedded quote back to the inside endpoint.
  bool dnat_icmp_error(Ipv4Packet& pkt, const IcmpQuoteView& q);
  /// Translate an ICMP error crossing outward (an inside host reporting
  /// on an inbound flow): rewrite outer src + embedded quoted destination
  /// to the external endpoint.
  bool snat_icmp_error(Ipv4Packet& pkt, const IcmpQuoteView& q);
  bool inbound_allowed(const Mapping& m, const Endpoint& remote,
                       IpProto proto) const;
  /// nullptr when the external port space is exhausted.
  Mapping* find_or_create(IpProto proto, const Endpoint& inside,
                          const Endpoint& dst);
  /// 0 when every port in [first_ext_port, 65535] is in use.
  std::uint16_t alloc_ext_port(IpProto proto);
  /// Advance the mapping's TCP state machine off the packet's flags.
  void track_tcp(Mapping& m, const Ipv4Packet& pkt, bool from_inside);

  /// Rewrite source or destination endpoint in place (ports/ids patched
  /// in the shared buffer, checksums updated incrementally).
  void rewrite(Ipv4Packet& pkt, std::optional<Endpoint> new_src,
               std::optional<Endpoint> new_dst);

  std::string name_;
  Stack stack_;
  NatType type_;
  NatConfig ncfg_;
  NatStats stats_;
  /// Port forwards never interact with the dynamic mapping state: dnat
  /// consults them before conntrack, snat restores the forwarded source
  /// before creating a mapping, and alloc_ext_port skips their ports.
  std::map<std::pair<IpProto, std::uint16_t>, Endpoint> forwards_;
  std::map<MapKey, Mapping> mappings_;
  std::map<std::pair<IpProto, std::uint16_t>, MapKey> by_ext_port_;
  std::map<IpProto, std::size_t> ext_ports_in_use_;
  std::uint16_t next_ext_port_;
  CtSweepTimer sweeper_;
};

}  // namespace ipop::net
