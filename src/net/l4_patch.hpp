// In-place L4 endpoint rewriting for middleboxes (NAT).
//
// The pre-refactor NAT decoded the full L4 payload into an owning struct,
// mutated it and re-encoded — two full payload copies per translated
// packet.  These helpers instead patch the port/identifier fields directly
// in the packet's shared buffer and update checksums incrementally
// (RFC 1624), so a translation costs O(1) byte writes regardless of
// packet size.  If the payload's storage is shared (e.g. a switch-flooded
// frame whose other copies are still in flight), it is cloned first
// (copy-on-write) so no other holder can observe the rewrite.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "net/ipv4.hpp"

namespace ipop::net {

/// A transport endpoint as middleboxes see it.  For ICMP echo, `port`
/// carries the query identifier.
struct L4Endpoint {
  Ipv4Address ip;
  std::uint16_t port = 0;
  auto operator<=>(const L4Endpoint&) const = default;
};

/// Extract the (src, dst) transport endpoints of `pkt` — UDP/TCP ports,
/// or the ICMP echo id in both slots.  Returns nullopt for unsupported
/// protocols, non-echo ICMP and malformed payloads (the shared
/// classification step of the NAT and the stateful firewall).
std::optional<std::pair<L4Endpoint, L4Endpoint>> l4_endpoints_of(
    const Ipv4Packet& pkt);

/// Rewrite the source and/or destination transport endpoint of `pkt`
/// (UDP/TCP ports, ICMP echo id) in place, fixing the L4 checksum
/// incrementally — including the pseudo-header contribution of the IP
/// address change for UDP/TCP.  A UDP checksum of 0 ("not computed") is
/// preserved as 0.  Returns the number of payload bytes copied: 0 on the
/// in-place path, the payload size when copy-on-write triggered on shared
/// storage.  Throws util::ParseError on malformed L4 payloads and on
/// non-echo ICMP (which has no rewritable query id).
std::size_t patch_l4_endpoints(Ipv4Packet& pkt,
                               std::optional<L4Endpoint> new_src,
                               std::optional<L4Endpoint> new_dst);

}  // namespace ipop::net
