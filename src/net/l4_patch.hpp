// In-place L4 endpoint rewriting for middleboxes (NAT).
//
// The pre-refactor NAT decoded the full L4 payload into an owning struct,
// mutated it and re-encoded — two full payload copies per translated
// packet.  These helpers instead patch the port/identifier fields directly
// in the packet's shared buffer and update checksums incrementally
// (RFC 1624), so a translation costs O(1) byte writes regardless of
// packet size.  If the payload's storage is shared (e.g. a switch-flooded
// frame whose other copies are still in flight), it is cloned first
// (copy-on-write) so no other holder can observe the rewrite.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "net/ipv4.hpp"

namespace ipop::net {

/// A transport endpoint as middleboxes see it.  For ICMP echo, `port`
/// carries the query identifier.
struct L4Endpoint {
  Ipv4Address ip;
  std::uint16_t port = 0;
  auto operator<=>(const L4Endpoint&) const = default;
};

/// Extract the (src, dst) transport endpoints of `pkt` — UDP/TCP ports,
/// or the ICMP echo id in both slots.  Returns nullopt for unsupported
/// protocols, non-echo ICMP and malformed payloads (the shared
/// classification step of the NAT and the stateful firewall).
std::optional<std::pair<L4Endpoint, L4Endpoint>> l4_endpoints_of(
    const Ipv4Packet& pkt);

/// Rewrite the source and/or destination transport endpoint of `pkt`
/// (UDP/TCP ports, ICMP echo id) in place, fixing the L4 checksum
/// incrementally — including the pseudo-header contribution of the IP
/// address change for UDP/TCP.  A UDP checksum of 0 ("not computed") is
/// preserved as 0.  Returns the number of payload bytes copied: 0 on the
/// in-place path, the payload size when copy-on-write triggered on shared
/// storage.  Throws util::ParseError on malformed L4 payloads and on
/// non-echo ICMP (which has no rewritable query id).
std::size_t patch_l4_endpoints(Ipv4Packet& pkt,
                               std::optional<L4Endpoint> new_src,
                               std::optional<L4Endpoint> new_dst);

/// Parsed view of the IPv4 + truncated-L4 quote inside an ICMP error
/// message (RFC 792: original header + at least 8 payload bytes).  The
/// offsets are relative to the start of the ICMP message, so a middlebox
/// can patch the quote in place inside `pkt.payload`.
struct IcmpQuoteView {
  IpProto proto;      // quoted packet's transport protocol
  Ipv4Address src_ip; // quoted packet's addresses
  Ipv4Address dst_ip;
  L4Endpoint src;     // quoted transport endpoints (ports / echo id)
  L4Endpoint dst;
  std::size_t ip_offset = 0;  // quoted IPv4 header
  std::size_t l4_offset = 0;  // quoted transport header (first bytes)
  std::size_t l4_len = 0;     // quoted transport bytes available (>= 8)
};

/// Parse a quoted IPv4 packet starting at `base_offset` within `bytes`.
/// Returns nullopt when the quote is malformed or carries a protocol /
/// ICMP type no middlebox can map to a flow.  The quoted header checksum
/// is not validated (middleboxes do not own it) and the quote is allowed
/// to be truncated after 8 transport bytes.
std::optional<IcmpQuoteView> parse_ipv4_quote(util::BufferView bytes,
                                              std::size_t base_offset = 0);

/// Classify `pkt` as an ICMP error (kDestUnreachable / kTimeExceeded)
/// and parse its embedded quote.  Returns nullopt for anything else.
std::optional<IcmpQuoteView> icmp_error_quote(const Ipv4Packet& pkt);

/// Rewrite one endpoint of the quote embedded in ICMP-error `pkt` in
/// place: the quoted IP address + port (or echo id) on the source side
/// (`src_side` true) or destination side, plus the outer IP header
/// addresses.  All checksums are fixed incrementally — the quoted IP
/// header checksum, the quoted UDP/TCP/ICMP checksum where the quote
/// carries it (a zero quoted UDP checksum stays zero per RFC 768), and
/// the outer ICMP checksum over the rewritten quote.  Returns payload
/// bytes copied: 0 in place, the payload size under copy-on-write.
std::size_t patch_icmp_quote_endpoint(Ipv4Packet& pkt, const IcmpQuoteView& q,
                                      bool src_side, const L4Endpoint& repl,
                                      std::optional<Ipv4Address> new_outer_src,
                                      std::optional<Ipv4Address> new_outer_dst);

}  // namespace ipop::net
