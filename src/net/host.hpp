// A simulated machine: one kernel stack plus one CPU.
//
// The CPU matters because IPOP is a user-level router: every tunneled
// packet consumes host CPU, and on loaded machines (Planet-Lab) that
// contention dominates latency (paper Section IV-D/V).
#pragma once

#include <memory>
#include <string>

#include "net/stack.hpp"
#include "sim/cpu.hpp"

namespace ipop::net {

class Host {
 public:
  Host(sim::EventLoop& loop, std::string name, StackConfig scfg = {})
      : name_(std::move(name)),
        stack_(loop, name_, scfg),
        cpu_(loop, name_ + "/cpu") {}

  const std::string& name() const { return name_; }
  Stack& stack() { return stack_; }
  const Stack& stack() const { return stack_; }
  sim::CpuScheduler& cpu() { return cpu_; }
  sim::EventLoop& loop() { return stack_.loop(); }

  /// Re-home the host onto its shard loop (engine planning).
  void rebind(sim::EventLoop& loop) {
    stack_.rebind(loop);
    cpu_.rebind(loop);
  }

 private:
  std::string name_;
  Stack stack_;
  sim::CpuScheduler cpu_;
};

}  // namespace ipop::net
