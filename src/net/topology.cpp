#include "net/topology.hpp"

namespace ipop::net {

Host& Network::add_host(const std::string& name, StackConfig scfg) {
  hosts_.push_back(std::make_unique<Host>(loop(), name, scfg));
  vertex_of(hosts_.back()->stack());
  return *hosts_.back();
}

Host& Network::add_router(const std::string& name) {
  StackConfig scfg;
  scfg.per_packet_delay = util::microseconds(5);
  Host& r = add_host(name, scfg);
  r.stack().set_forwarding(true);
  return r;
}

sim::Switch& Network::add_switch(const std::string& name) {
  switches_.push_back(std::make_unique<sim::Switch>(loop(), name));
  vertex_of(*switches_.back());
  return *switches_.back();
}

NatBox& Network::add_nat(const std::string& name, NatType type,
                         StackConfig scfg, NatConfig ncfg) {
  scfg.per_packet_delay = util::microseconds(10);
  nats_.push_back(std::make_unique<NatBox>(loop(), name, type, scfg, ncfg));
  vertex_of(nats_.back()->stack());
  return *nats_.back();
}

Firewall& Network::add_firewall(const std::string& name, StackConfig scfg,
                                FirewallConfig fwcfg) {
  scfg.per_packet_delay = util::microseconds(10);
  firewalls_.push_back(std::make_unique<Firewall>(loop(), name, scfg, fwcfg));
  vertex_of(firewalls_.back()->stack());
  return *firewalls_.back();
}

sim::ShardedEngine::VertexId Network::vertex_of(const Stack& stack) {
  auto it = stack_vertex_.find(&stack);
  if (it != stack_vertex_.end()) return it->second;
  const auto v = engine_.add_vertex();
  stack_vertex_.emplace(&stack, v);
  return v;
}

sim::ShardedEngine::VertexId Network::vertex_of(const sim::Switch& sw) {
  auto it = switch_vertex_.find(&sw);
  if (it != switch_vertex_.end()) return it->second;
  const auto v = engine_.add_vertex();
  switch_vertex_.emplace(&sw, v);
  return v;
}

void Network::record_link(sim::Link& link, sim::ShardedEngine::VertexId a,
                          sim::ShardedEngine::VertexId b,
                          util::Duration delay) {
  engine_.add_edge(a, b, delay);
  link_bindings_.push_back(LinkBinding{&link, a, b});
}

void Network::plan_shards(std::size_t n) {
  engine_.plan(n, seed_);
  if (engine_.shards() <= 1) return;  // everything stays on loop 0
  for (auto& h : hosts_) {
    h->rebind(engine_.loop_of(vertex_of(h->stack())));
  }
  for (auto& sw : switches_) {
    sw->rebind(engine_.loop_of(vertex_of(*sw)));
  }
  for (auto& nb : nats_) {
    nb->rebind(engine_.loop_of(vertex_of(nb->stack())));
  }
  for (auto& fw : firewalls_) {
    fw->rebind(engine_.loop_of(vertex_of(fw->stack())));
  }
  for (const LinkBinding& lb : link_bindings_) {
    const std::size_t sa = engine_.shard_of(lb.a);
    const std::size_t sb = engine_.shard_of(lb.b);
    lb.link->bind(engine_.loop(sa), engine_.loop(sb),
                  engine_.channel(sa, sb), engine_.channel(sb, sa));
  }
}

sim::Link& Network::make_link(const sim::LinkConfig& lcfg,
                              const std::string& name) {
  const std::size_t idx = links_.size();
  links_.push_back(
      std::make_unique<sim::Link>(loop(), lcfg, rng_.fork(idx), name));
  // Stream ids come off the creation index, which every run (and every
  // shard count) replays identically — the canonical delivery sort key.
  links_.back()->set_streams(2 * idx, 2 * idx + 1);
  return *links_.back();
}

sim::Link& Network::connect_to_switch(Stack& stack,
                                      const InterfaceConfig& icfg,
                                      sim::Switch& sw,
                                      const sim::LinkConfig& lcfg) {
  sim::Link& link =
      make_link(lcfg, stack.name() + "<->" + sw.name());
  const std::size_t iface = stack.add_interface(icfg, &link.end_a());
  const std::size_t port = sw.attach(link.end_b());
  record_link(link, vertex_of(stack), vertex_of(sw), lcfg.delay);
  // Record the binding for proxy-ARP; inert unless the switch has
  // suppression turned on (the scale harness does, paper topologies not).
  if (!icfg.ip.is_unspecified()) {
    sw.register_endpoint(icfg.ip.value, stack.interface_mac(iface).octets,
                         port);
  }
  return link;
}

sim::Link& Network::connect(Stack& a, const InterfaceConfig& ia, Stack& b,
                            const InterfaceConfig& ib,
                            const sim::LinkConfig& lcfg) {
  sim::Link& link = make_link(lcfg, a.name() + "<->" + b.name());
  a.add_interface(ia, &link.end_a());
  b.add_interface(ib, &link.end_b());
  record_link(link, vertex_of(a), vertex_of(b), lcfg.delay);
  return link;
}

Host* Network::find_host(const std::string& name) {
  for (auto& h : hosts_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Figure 4 testbed
// ---------------------------------------------------------------------------

namespace {
Ipv4Address ip(const char* s) { return Ipv4Address::parse(s); }
Ipv4Prefix pfx(const char* s) { return Ipv4Prefix::parse(s); }
}  // namespace

Fig4Testbed build_fig4(const Fig4Options& opts) {
  Fig4Testbed tb;
  tb.net = std::make_unique<Network>(opts.seed);
  Network& net = *tb.net;

  StackConfig host_cfg;
  host_cfg.per_packet_delay = opts.host_stack_delay;

  sim::LinkConfig lan;
  lan.delay = opts.lan_link_delay;
  lan.bandwidth_bps = opts.lan_bw;

  sim::LinkConfig wan_lcfg;
  wan_lcfg.delay = opts.wan_hop_delay;
  wan_lcfg.bandwidth_bps = opts.wan_bw;
  wan_lcfg.jitter = opts.wan_jitter;
  wan_lcfg.loss_rate = opts.wan_loss;
  wan_lcfg.queue_bytes = opts.wan_queue_bytes;

  sim::LinkConfig short_wan = wan_lcfg;
  short_wan.delay = opts.wan_hop_delay / 2;

  // --- Addresses ----------------------------------------------------------
  tb.f1_ip = ip("10.0.1.1");
  tb.f2_ip = ip("10.0.1.2");
  tb.f4_lan_ip = ip("10.0.1.4");
  tb.f4_pub_ip = ip("128.227.56.83");
  tb.f3_ip = ip("128.227.136.244");
  tb.v1_ip = ip("139.70.24.100");
  tb.l1_ip = ip("130.39.128.10");
  const auto nat_in_ip = ip("10.0.1.254");
  const auto nat_out_ip = ip("128.227.56.253");
  const auto cr_campus_ip = ip("128.227.56.1");
  const auto cr_f3_ip = ip("128.227.136.1");
  const auto vfw_in_ip = ip("139.70.24.1");
  const auto lfw_in_ip = ip("130.39.128.1");

  // --- ACIS private LAN ---------------------------------------------------
  auto& sw_acis = net.add_switch("sw-acis");
  tb.f1 = &net.add_host("F1", host_cfg);
  tb.f2 = &net.add_host("F2", host_cfg);
  tb.f4 = &net.add_host("F4", host_cfg);
  net.connect_to_switch(tb.f1->stack(), {"eth0", tb.f1_ip, 24}, sw_acis, lan);
  net.connect_to_switch(tb.f2->stack(), {"eth0", tb.f2_ip, 24}, sw_acis, lan);
  net.connect_to_switch(tb.f4->stack(), {"eth0", tb.f4_lan_ip, 24}, sw_acis,
                        lan);

  tb.campus_nat = &net.add_nat("campus-nat", opts.campus_nat_type);
  net.connect_to_switch(tb.campus_nat->stack(), {"in", nat_in_ip, 24}, sw_acis,
                        lan);

  // --- Campus public network ----------------------------------------------
  auto& sw_campus = net.add_switch("sw-campus");
  net.connect_to_switch(tb.campus_nat->stack(), {"out", nat_out_ip, 24},
                        sw_campus, lan);
  net.connect_to_switch(tb.f4->stack(), {"eth1", tb.f4_pub_ip, 24}, sw_campus,
                        lan);

  Host& cr = net.add_router("campus-router");
  net.connect_to_switch(cr.stack(), {"campus", cr_campus_ip, 24}, sw_campus,
                        lan);

  // F3's separate UF LAN hangs off the campus router.
  tb.f3 = &net.add_host("F3", host_cfg);
  net.connect(tb.f3->stack(), {"eth0", tb.f3_ip, 24}, cr.stack(),
              {"f3net", cr_f3_ip, 24}, lan);

  // --- WAN core: campus-router - W1..W5 (Abilene stand-in) -----------------
  std::vector<Host*> wan;
  for (int i = 1; i <= 5; ++i) {
    wan.push_back(&net.add_router("W" + std::to_string(i)));
  }
  auto transfer = [&](int k) {
    // /30 transfer subnets 10.200.k.0/30 with .1 and .2.
    const std::uint32_t base = (10u << 24) | (200u << 16) | (k << 8);
    return std::pair{Ipv4Address(base + 1), Ipv4Address(base + 2)};
  };
  {
    auto [a, b] = transfer(0);
    net.connect(cr.stack(), {"wan", a, 30}, wan[0]->stack(), {"west", b, 30},
                wan_lcfg);
  }
  for (int i = 0; i < 4; ++i) {
    auto [a, b] = transfer(i + 1);
    net.connect(wan[i]->stack(), {"east", a, 30}, wan[i + 1]->stack(),
                {"west", b, 30}, wan_lcfg);
  }

  // --- VIMS branch: W5 - WV1 - VFW - V1 ------------------------------------
  Host& wv1 = net.add_router("WV1");
  {
    auto [a, b] = transfer(10);
    net.connect(wan[4]->stack(), {"vims", a, 30}, wv1.stack(), {"west", b, 30},
                short_wan);
  }
  tb.vfw = &net.add_firewall("VFW");
  {
    auto [a, b] = transfer(11);
    // Firewall convention: interface 0 = inside.  Create inside first.
    tb.v1 = &net.add_host("V1", host_cfg);
    net.connect(tb.v1->stack(), {"eth0", tb.v1_ip, 24}, tb.vfw->stack(),
                {"in", vfw_in_ip, 24}, lan);
    net.connect(tb.vfw->stack(), {"out", b, 30}, wv1.stack(), {"east", a, 30},
                short_wan);
  }

  // --- LSU branch: W5 - WL1 - LFW - L1 --------------------------------------
  Host& wl1 = net.add_router("WL1");
  {
    auto [a, b] = transfer(20);
    net.connect(wan[4]->stack(), {"lsu", a, 30}, wl1.stack(), {"west", b, 30},
                short_wan);
  }
  tb.lfw = &net.add_firewall("LFW");
  {
    auto [a, b] = transfer(21);
    tb.l1 = &net.add_host("L1", host_cfg);
    net.connect(tb.l1->stack(), {"eth0", tb.l1_ip, 24}, tb.lfw->stack(),
                {"in", lfw_in_ip, 24}, lan);
    net.connect(tb.lfw->stack(), {"out", b, 30}, wl1.stack(), {"east", a, 30},
                short_wan);
  }
  tb.wan_routers = wan;
  tb.wan_routers.push_back(&wv1);
  tb.wan_routers.push_back(&wl1);

  // --- Routing -------------------------------------------------------------
  const auto uf = pfx("128.227.0.0/16");
  const auto vims = pfx("139.70.24.0/24");
  const auto lsu = pfx("130.39.128.0/24");
  const auto any = pfx("0.0.0.0/0");

  // Hosts.
  tb.f1->stack().add_route(any, 0, nat_in_ip);
  tb.f2->stack().add_route(any, 0, nat_in_ip);
  tb.f4->stack().add_route(any, 1, cr_campus_ip);  // default via public side
  tb.f3->stack().add_route(any, 0, cr_f3_ip);
  tb.v1->stack().add_route(any, 0, vfw_in_ip);
  tb.l1->stack().add_route(any, 0, lfw_in_ip);

  // Campus NAT: default to the campus router on its outside interface.
  tb.campus_nat->stack().add_route(any, 1, cr_campus_ip);

  // Campus router: default east to W1.
  cr.stack().add_route(any, 2, transfer(0).second);

  // WAN core routers: UF prefixes west, default east; W5 branches.
  wan[0]->stack().add_route(uf, 0, transfer(0).first);
  wan[0]->stack().add_route(any, 1, transfer(1).second);
  for (int i = 1; i < 4; ++i) {
    wan[i]->stack().add_route(uf, 0, transfer(i).first);
    wan[i]->stack().add_route(any, 1, transfer(i + 1).second);
  }
  wan[4]->stack().add_route(uf, 0, transfer(4).first);
  wan[4]->stack().add_route(vims, 1, transfer(10).second);
  wan[4]->stack().add_route(lsu, 2, transfer(20).second);

  wv1.stack().add_route(vims, 1, transfer(11).second);
  wv1.stack().add_route(any, 0, transfer(10).first);
  wl1.stack().add_route(lsu, 1, transfer(21).second);
  wl1.stack().add_route(any, 0, transfer(20).first);

  tb.vfw->stack().add_route(any, 1, transfer(11).first);
  tb.lfw->stack().add_route(any, 1, transfer(21).first);

  // --- Firewall policy (paper, Figure 4 caption) ---------------------------
  // VFW/LFW: no unsolicited inbound except SSH (22) from F3.
  {
    FirewallRule ssh_from_f3;
    ssh_from_f3.proto = IpProto::kTcp;
    ssh_from_f3.src = Ipv4Prefix{tb.f3_ip, 32};
    ssh_from_f3.dst_port = 22;
    tb.vfw->allow_inbound(ssh_from_f3);
    tb.lfw->allow_inbound(ssh_from_f3);
  }
  // LFW: outgoing *TCP* only to F3 (the paper's caption); other
  // protocols (UDP, ICMP) pass outbound, which is what lets IPOP-UDP
  // self-configure from behind LFW.
  {
    FirewallRule tcp_to_f3;
    tcp_to_f3.proto = IpProto::kTcp;
    tcp_to_f3.dst = Ipv4Prefix{tb.f3_ip, 32};
    tb.lfw->add_outbound_rule(FwAction::kAllow, tcp_to_f3);
    FirewallRule any_tcp;
    any_tcp.proto = IpProto::kTcp;
    tb.lfw->add_outbound_rule(FwAction::kDeny, any_tcp);
  }

  return tb;
}

// ---------------------------------------------------------------------------
// Planet-Lab testbed
// ---------------------------------------------------------------------------

PlanetLabTestbed build_planetlab(const PlanetLabOptions& opts) {
  PlanetLabTestbed tb;
  tb.net = std::make_unique<Network>(opts.seed);
  Network& net = *tb.net;
  util::Rng rng(opts.seed * 7919 + 17);

  tb.core = &net.add_router("internet-core");

  StackConfig host_cfg;
  host_cfg.per_packet_delay = opts.host_stack_delay;

  for (int i = 0; i < opts.nodes; ++i) {
    Host& h = net.add_host("pl" + std::to_string(i), host_cfg);
    // Subnet 41.<i/250>.<i%250>.0/24; host .2, core .1.
    const std::uint32_t base =
        (41u << 24) | ((i / 250) << 16) | ((i % 250) << 8);
    const Ipv4Address host_ip(base + 2);
    const Ipv4Address core_ip(base + 1);

    sim::LinkConfig access;
    access.bandwidth_bps = opts.access_bw;
    access.delay = util::Duration{static_cast<std::int64_t>(rng.uniform(
        static_cast<double>(opts.min_access_delay.count()),
        static_cast<double>(opts.max_access_delay.count())))};
    access.jitter = opts.access_jitter;
    net.connect(h.stack(), {"eth0", host_ip, 24}, tb.core->stack(),
                {"acc" + std::to_string(i), core_ip, 24}, access);
    h.stack().add_route(Ipv4Prefix::parse("0.0.0.0/0"), 0, core_ip);

    // Heavy-tailed CPU contention, as observed on Planet-Lab by the paper.
    h.cpu().set_load(rng.exponential(opts.cpu_load_mean));
    h.cpu().set_sched_quantum(opts.sched_quantum);

    tb.hosts.push_back(&h);
    tb.ips.push_back(host_ip);
  }
  return tb;
}

}  // namespace ipop::net
