// Simulated kernel TCP/IP stack for one host.
//
// Binds network interfaces (LinkEnds) to the protocol implementations:
// ARP resolution with request queueing, longest-prefix-match routing, ICMP
// echo (kernel-style auto-reply), UDP/TCP socket demultiplexing, IP
// forwarding with netfilter-flavoured hooks (PREROUTING / FORWARD /
// POSTROUTING) that the NAT box and stateful firewall plug into.
//
// Each packet pays a configurable per-traversal processing delay.  IPOP's
// tunneled packets traverse a stack twice per host (virtual interface +
// physical interface), which the paper identifies as the dominant LAN
// overhead (Section IV-B) and proposes eliminating (Section V.2); the
// ablation bench toggles exactly this knob.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/socket.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "sim/event_loop.hpp"
#include "sim/link.hpp"
#include "util/lifetime.hpp"
#include "util/random.hpp"

namespace ipop::net {

struct InterfaceConfig {
  std::string name = "eth0";
  Ipv4Address ip;
  int prefix_len = 24;
  std::size_t mtu = 1500;
  /// Zero MAC means "allocate automatically".
  MacAddress mac{};
};

struct Route {
  Ipv4Prefix prefix;
  std::size_t iface = 0;
  std::optional<Ipv4Address> gateway;  // empty: directly connected
  int metric = 0;
};

struct StackConfig {
  /// Simulated kernel processing cost per packet per stack traversal
  /// (applied once on send and once on receive).
  Duration per_packet_delay = util::microseconds(25);
  Duration arp_retry = util::seconds(1);
  int arp_retries = 3;
  std::uint64_t seed = 0;  // 0: derive from host name
  /// Ablation toggle (paper Section V.2): when true the stack deep-copies
  /// the packet payload at every stack crossing — socket send, IP
  /// receive, frame emission, socket delivery — reproducing the copying
  /// kernel path whose elimination the paper proposes.  When false (the
  /// default) the pipeline is zero-copy and `payload_bytes_copied` stays
  /// at 0 on unicast forwarding paths.
  bool copy_at_stack_crossing = false;
};

struct StackCounters {
  std::uint64_t ip_rx = 0;
  std::uint64_t ip_tx = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_parse = 0;
  std::uint64_t dropped_checksum = 0;
  std::uint64_t dropped_hook = 0;
  std::uint64_t dropped_mtu = 0;
  std::uint64_t dropped_arp_fail = 0;
  std::uint64_t icmp_echo_replied = 0;
  /// ICMP errors this stack generated (TTL exceeded, port/frag
  /// unreachable) and errors delivered to the local error handler —
  /// traceroute and PMTU-style scenarios read these.
  std::uint64_t icmp_errors_sent = 0;
  std::uint64_t icmp_errors_delivered = 0;
  /// Payload bytes memcpy'd by this stack: 0 on the default zero-copy
  /// path; the copy_at_stack_crossing ablation, owning-vector socket
  /// APIs and shared-storage reallocations account here.
  std::uint64_t payload_bytes_copied = 0;
  /// Payload bytes assembled by the scatter-gather walk at datagram /
  /// segment build time — the simulated NIC's DMA descriptor pass over a
  /// BufferChain, deliberately kept apart from payload_bytes_copied (no
  /// CPU memcpy on the host's critical path).
  std::uint64_t payload_bytes_gathered = 0;
  /// UDP socket-API crossings ("syscalls"): one per send_to, one per
  /// send_batch regardless of batch size.  datagrams_sent /
  /// udp_send_calls is the sends-per-syscall amortization the
  /// sendmmsg-style batch API buys.
  std::uint64_t udp_send_calls = 0;
};

class Stack {
 public:
  Stack(sim::EventLoop& loop, std::string host_name, StackConfig cfg = {});
  ~Stack();

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  // --- configuration -----------------------------------------------------
  /// Attach an interface backed by a link end; returns the interface index.
  std::size_t add_interface(const InterfaceConfig& cfg, sim::LinkEnd* link);
  std::size_t interface_count() const { return ifaces_.size(); }
  Ipv4Address interface_ip(std::size_t idx) const { return ifaces_[idx]->cfg.ip; }
  MacAddress interface_mac(std::size_t idx) const { return ifaces_[idx]->cfg.mac; }
  const std::string& interface_name(std::size_t idx) const {
    return ifaces_[idx]->cfg.name;
  }
  std::optional<std::size_t> interface_by_name(const std::string& name) const;
  /// Re-address an interface after attach (self-configuration: the tap
  /// comes up unnumbered and gets its IP once the DHCP lease is claimed).
  /// Adds the connected route for the new subnet.
  void set_interface_ip(std::size_t iface, Ipv4Address ip);

  void add_route(Ipv4Prefix prefix, std::size_t iface,
                 std::optional<Ipv4Address> gateway = {}, int metric = 0);
  void add_static_arp(std::size_t iface, Ipv4Address ip, MacAddress mac);
  /// Secondary address on an interface (used by IPOP nodes that route for
  /// several virtual IPs, e.g. VMs they host).
  void add_ip_alias(std::size_t iface, Ipv4Address ip);
  void remove_ip_alias(std::size_t iface, Ipv4Address ip);
  void set_forwarding(bool enabled) { forwarding_ = enabled; }

  /// PREROUTING: runs before the local-delivery decision; may rewrite the
  /// packet (NAT DNAT).  Return false to drop.
  using PreroutingHook = std::function<bool(Ipv4Packet&, std::size_t in_if)>;
  /// FORWARD: filter for transit packets (stateful firewall).
  using ForwardHook =
      std::function<bool(const Ipv4Packet&, std::size_t in_if, std::size_t out_if)>;
  /// POSTROUTING: runs just before emission of forwarded *and* locally
  /// generated packets; may rewrite (NAT SNAT).
  using PostroutingHook = std::function<bool(Ipv4Packet&, std::size_t out_if)>;
  void set_prerouting_hook(PreroutingHook h) { prerouting_ = std::move(h); }
  void set_forward_hook(ForwardHook h) { forward_ = std::move(h); }
  void set_postrouting_hook(PostroutingHook h) { postrouting_ = std::move(h); }

  // --- raw IP ------------------------------------------------------------
  /// Route and transmit a locally generated packet (fills src if 0).
  void send_ip(Ipv4Packet pkt);

  // --- ICMP echo ---------------------------------------------------------
  void send_echo_request(Ipv4Address dst, std::uint16_t id, std::uint16_t seq,
                         std::vector<std::uint8_t> payload = {});
  /// Receives echo *replies* addressed to this host.
  using EchoReplyHandler =
      std::function<void(Ipv4Address src, const IcmpMessage&)>;
  void set_echo_reply_handler(EchoReplyHandler h) {
    echo_reply_handler_ = std::move(h);
  }
  /// Receives ICMP errors (dest unreachable / time exceeded).
  using IcmpErrorHandler =
      std::function<void(Ipv4Address src, const IcmpMessage&)>;
  void set_icmp_error_handler(IcmpErrorHandler h) {
    icmp_error_handler_ = std::move(h);
  }
  /// Current handler — lets a tool (net::Traceroute) take the slot over
  /// temporarily and restore it when done.
  IcmpErrorHandler icmp_error_handler() const { return icmp_error_handler_; }

  // --- sockets -----------------------------------------------------------
  /// Bind a UDP socket; port 0 picks an ephemeral port.  Returns nullptr if
  /// the port is taken.
  std::shared_ptr<UdpSocket> udp_bind(std::uint16_t port = 0);
  std::shared_ptr<TcpSocket> tcp_connect(Ipv4Address dst, std::uint16_t port,
                                         TcpConfig cfg = {});
  std::shared_ptr<TcpListener> tcp_listen(std::uint16_t port,
                                          TcpConfig cfg = {});

  // --- introspection -----------------------------------------------------
  sim::EventLoop& loop() { return *loop_; }
  /// Re-home onto a shard loop (engine planning).  Must happen before any
  /// traffic: a pending ARP-retry timer would be stranded on the old loop.
  void rebind(sim::EventLoop& loop) { loop_ = &loop; }
  const std::string& name() const { return name_; }
  /// Process-unique stack identity (never reused, unlike the address of a
  /// destroyed Stack); used to key per-stack registries safely.
  std::uint64_t uid() const { return uid_; }
  const StackCounters& counters() const { return counters_; }
  const StackConfig& config() const { return cfg_; }
  void set_per_packet_delay(Duration d) { cfg_.per_packet_delay = d; }
  util::Rng& rng() { return rng_; }
  /// True if `ip` is one of this stack's interface addresses.
  bool is_local_ip(Ipv4Address ip) const;
  /// Source address selection for a destination (egress interface IP).
  Ipv4Address source_ip_for(Ipv4Address dst) const;

 private:
  friend class UdpSocket;
  friend class TcpSocket;
  friend class TcpListener;

  struct PendingArp {
    std::deque<Ipv4Packet> queue;
    int attempts = 0;
    std::uint64_t timer = 0;
  };

  struct Interface {
    InterfaceConfig cfg;
    sim::LinkEnd* link = nullptr;
    std::vector<Ipv4Address> aliases;
    std::unordered_map<Ipv4Address, MacAddress> arp_table;
    std::unordered_map<Ipv4Address, PendingArp> arp_pending;
  };

  struct TcpKey {
    Ipv4Address local_ip;
    std::uint16_t local_port;
    Ipv4Address remote_ip;
    std::uint16_t remote_port;
    bool operator==(const TcpKey&) const = default;
  };
  struct TcpKeyHash {
    std::size_t operator()(const TcpKey& k) const noexcept {
      std::size_t h = std::hash<Ipv4Address>{}(k.local_ip);
      h = h * 1315423911u ^ k.local_port;
      h = h * 1315423911u ^ std::hash<Ipv4Address>{}(k.remote_ip);
      h = h * 1315423911u ^ k.remote_port;
      return h;
    }
  };

  // Frame/packet pipeline.  Received frames are adopted, not copied: the
  // frame buffer becomes the Ipv4Packet's payload storage and the reply /
  // forward path prepends fresh headers into the recovered headroom.
  void on_frame(std::size_t iface, sim::Frame frame);
  void process_frame(std::size_t iface, sim::Frame frame);
  void handle_arp(std::size_t iface, std::span<const std::uint8_t> bytes);
  void handle_ip(std::size_t iface, util::Buffer bytes);
  void deliver_local(std::size_t iface, Ipv4Packet pkt);
  void forward_packet(std::size_t iface, Ipv4Packet pkt);
  /// Serialize headers into the payload buffer's headroom and hand the
  /// frame to the link (the transmit-side stack traversal).
  void emit_ip(std::size_t iface, MacAddress dst, Ipv4Packet pkt);
  void emit_frame(std::size_t iface, util::Buffer frame);
  void resolve_and_send(std::size_t iface, Ipv4Address next_hop,
                        Ipv4Packet pkt);
  void send_arp_request(std::size_t iface, Ipv4Address target);
  void arp_retry(std::size_t iface, Ipv4Address target);

  const Route* lookup_route(Ipv4Address dst) const;
  /// `info` lands in the second header word's low 16 bits — the RFC 1191
  /// next-hop-MTU slot for frag-needed (code 4) errors, 0 otherwise.
  void send_icmp_error(const Ipv4Packet& original, IcmpType type,
                       std::uint8_t code, std::uint16_t info = 0);

  // Transport demux.
  void deliver_icmp(Ipv4Packet pkt);
  void deliver_udp(Ipv4Packet pkt);
  void deliver_tcp(const Ipv4Packet& pkt);
  void send_tcp_rst_for(const Ipv4Packet& pkt, const TcpSegment& seg);

  std::uint16_t alloc_ephemeral_port(bool tcp);
  void tcp_register(const TcpKey& key, std::shared_ptr<TcpSocket> sock);
  void tcp_unregister(const TcpKey& key);
  void udp_unregister(std::uint16_t port);

  /// Every socket/listener ever created on this stack, weakly held (the
  /// live maps above only cover *open* ones).  ~Stack walks these and
  /// detaches survivors — clearing user callbacks that capture shared
  /// pointers back to the socket — so handler-capture reference cycles
  /// cannot outlive the stack (LeakSanitizer runs clean over the tests).
  template <typename T>
  static void remember(std::vector<std::weak_ptr<T>>& reg,
                       const std::shared_ptr<T>& sock) {
    if (reg.size() >= 32 && reg.size() % 32 == 0) {
      std::erase_if(reg, [](const auto& w) { return w.expired(); });
    }
    reg.push_back(sock);
  }

  sim::EventLoop* loop_;
  std::string name_;
  std::uint64_t uid_;
  StackConfig cfg_;
  util::Rng rng_;
  bool forwarding_ = false;

  std::vector<std::unique_ptr<Interface>> ifaces_;
  std::vector<Route> routes_;
  std::uint16_t next_ip_id_ = 1;
  std::uint16_t next_ephemeral_ = 32768;

  PreroutingHook prerouting_;
  ForwardHook forward_;
  PostroutingHook postrouting_;

  std::unordered_map<std::uint16_t, std::shared_ptr<UdpSocket>> udp_socks_;
  std::unordered_map<TcpKey, std::shared_ptr<TcpSocket>, TcpKeyHash> tcp_socks_;
  std::unordered_map<std::uint16_t, std::shared_ptr<TcpListener>> tcp_listeners_;
  std::vector<std::weak_ptr<UdpSocket>> udp_created_;
  std::vector<std::weak_ptr<TcpSocket>> tcp_created_;
  std::vector<std::weak_ptr<TcpListener>> listeners_created_;

  EchoReplyHandler echo_reply_handler_;
  IcmpErrorHandler icmp_error_handler_;
  StackCounters counters_;
  // Declared last: per-packet-delay events (receive, loopback, transmit)
  // still sit in the loop when a Stack is torn down mid-traffic; their
  // lambdas carry a guard from this token instead of a bare `this`.
  util::AliveToken alive_;
};

}  // namespace ipop::net
