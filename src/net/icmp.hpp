// ICMP codec: echo request/reply plus the error types the stack generates.
//
// The paper's Table I and Figure 5 are built from ICMP round-trip times
// ("ping"), so echo handling is a first-class citizen of the simulated
// kernel stack.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.hpp"

namespace ipop::net {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  /// Echo identifier / sequence.  For error messages `id` is unused and
  /// `seq` (the second header word's low 16 bits) carries the error's
  /// auxiliary info — the RFC 1191 next-hop MTU for frag-needed.
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
  /// Echo payload, or the original IP header + 8 bytes for errors.
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> encode() const;
  /// Encode into a shared buffer with `headroom` spare front bytes so the
  /// IP and Ethernet headers prepend downstream without copying.
  util::Buffer encode_buffer(std::size_t headroom) const;
  /// Throws util::ParseError on truncation or bad checksum.
  static IcmpMessage decode(util::BufferView bytes);

  bool is_echo() const {
    return type == IcmpType::kEchoRequest || type == IcmpType::kEchoReply;
  }
  bool is_error() const {
    return type == IcmpType::kDestUnreachable || type == IcmpType::kTimeExceeded;
  }
};

/// Zero-copy parsed ICMP message: `payload` aliases the input view.  Lets
/// middleboxes (NAT, firewall) peek at echo ids without owning copies.
/// Field offsets are exposed for in-place patching (NAT id rewrite, the
/// kernel echo reply's type flip).
struct IcmpView {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
  util::BufferView payload;

  static constexpr std::size_t kTypeOffset = 0;
  static constexpr std::size_t kCodeOffset = 1;
  static constexpr std::size_t kChecksumOffset = 2;
  static constexpr std::size_t kIdOffset = 4;
  static constexpr std::size_t kSeqOffset = 6;
  static constexpr std::size_t kHeaderSize = 8;
  /// Where the quoted original IPv4 packet (header + 8 payload bytes,
  /// RFC 792) starts inside an error message.
  static constexpr std::size_t kQuoteOffset = kHeaderSize;

  /// Throws util::ParseError on truncation or bad checksum.
  static IcmpView parse(util::BufferView bytes);
  /// Structural parse only (no checksum validation) — what middleboxes
  /// classifying or rewriting transit traffic need: they must not drop
  /// on (or re-sum) a checksum the endpoints own.
  static IcmpView parse_headers(util::BufferView bytes);

  bool is_echo() const {
    return type == IcmpType::kEchoRequest || type == IcmpType::kEchoReply;
  }
  bool is_error() const {
    return type == IcmpType::kDestUnreachable || type == IcmpType::kTimeExceeded;
  }
};

}  // namespace ipop::net
