#!/usr/bin/env python3
"""Bench-regression gate for the repository's machine-readable bench JSON.

Usage:
    tools/bench_gate.py FRESH.json [MORE.json ...]
                        [--suite micro|churn|scale|hostile]
                        [--baseline COMMITTED.json] [--self-test]

Several FRESH files are merged into one run table before gating — the
scale suite uses this to see the --shards 1 and --shards 4 soak legs
(distinct run names) side by side in a single gate invocation.

Suites:
  micro  (default) — bench_micro_core output: the zero-copy invariants
         (bytes_copied_* = 0, and the sealed tunnel path's
         payload_bytes_copied = 0 on both seal and open), the sendmmsg
         amortization (datagrams_per_syscall) against the committed
         BENCH_micro_core.json, and the per-packet crypto cost bound
         (full-MTU seal/open at most 2x a 64-byte frame — crypto cost
         is per packet, not per byte).
  churn  — bench_churn_soak output: the self-configuration invariants.
         duplicate_leases must be exactly 0 (the DHT create() uniqueness
         guarantee), resolution_success_rate and lease_acquired_fraction
         must clear their absolute floors, and resolution_success_rate
         must not fall more than a small tolerance below the committed
         BENCH_churn_soak.json (CI legs run a smaller N whose run name
         differs from the baseline's; baseline-relative rules then skip).
  scale  — the 10k-node soak, run as a --shards 1 and a --shards 4 leg:
         duplicate_leases == 0 plus the resolution and acquisition
         floors on BOTH legs (the ^ChurnSoak/ regexes match each leg's
         run name), lease_losses bounded by a ceiling instead of pinned
         to zero (see the suite comment), the two legs' trace digests
         and key counters bit-for-bit equal ("equal" rules — the
         sharded engine's determinism contract), and the 4-shard leg's
         wall clock at most 0.5x the 1-shard leg's ("speedup" rule —
         sharding must actually pay).
  hostile — bench_churn_soak --hostile output: every node behind a NAT
         of a mixed type, mixed UDP/TCP transports, 10 % churn.  The
         self-configuration invariants still hold (duplicate_leases ==
         0, resolution/acquisition floors), plus the traversal
         contract: per NAT-type-pair punch_success_rate floors
         ("rate_floor" rules — each applies only when the companion
         pairs_<a>_<b> count is nonzero, so a small CI leg with an
         empty bucket does not gate on its vacuous 1.0), every
         symmetric-symmetric link relayed (nonrelayed_sym_sym == 0), a
         ceiling on relayed_edge_fraction (relay is the fallback, not
         the norm), and zero bytes copied wrapping relay frames (the
         per-path headroom budget holds on tunneled paths).

Absolute wall-clock timings are deliberately NOT gated — CI machines are
noisy.  Every gated counter is a deterministic count or ratio; the two
timing-derived rule classes ("scaling" and "speedup") compare two runs
from the SAME fresh run table against each other, so machine speed
cancels out.

--self-test verifies the gate actually fails on deliberately regressed
counters, then exits 0.  CI runs it after the real gate so a silently
broken parser cannot pass green.
"""

import argparse
import copy
import json
import re
import sys

SUITES = {
    "micro": {
        "default_baseline": "BENCH_micro_core.json",
        # Counters that must be exactly 0 for matching benchmark names.
        # The ablation/legacy variants (BM_ForwardHopCopy,
        # BM_NatRewriteCopyAtCrossing, BM_NatForwardSim/1/*,
        # BM_UdpFanoutCopyPerDest) are intentionally absent: their nonzero
        # counters are the comparison, not a regression.
        "zero": [
            (r"^BM_ForwardHopZeroCopy/", "bytes_copied_per_hop"),
            (r"^BM_NatRewriteInPlace/", "bytes_copied_per_forward"),
            (r"^BM_NatForwardSim/0/", "bytes_copied_per_forward"),
            (r"^BM_TcpEdgeStreamSend/", "bytes_copied_per_send"),
            (r"^BM_UdpFanoutBatchShared/", "bytes_copied_per_datagram"),
            # The secured hot path: encrypt/decrypt in place on the
            # uniquely-owned capture buffer, seal header prepended into
            # headroom — zero payload bytes moved, and a well-formed
            # frame never bounces off the verifier.
            (r"^BM_SealInPlace/", "payload_bytes_copied"),
            (r"^BM_OpenInPlace/", "payload_bytes_copied"),
            (r"^BM_OpenInPlace/", "frames_rejected"),
        ],
        # (name regex, counter, absolute floor): fresh must be >= floor.
        "floor": [
            (r"^BM_NatForwardSim/0/", "delivered_fraction", 0.9),
            (r"^BM_TcpEdgeStreamSend/", "delivered_fraction", 0.9),
        ],
        # (name regex, counter, tolerance): fresh must be >= committed
        # baseline value - tolerance for the same run name.
        "baseline_min": [
            (r"^BM_UdpFanoutBatchShared/", "datagrams_per_syscall", 0.0),
        ],
        # (small run, large run, max cpu_time ratio): both runs come from
        # the same fresh JSON, so machine speed cancels.  A 16x table must
        # not cost more than ~4x per lookup — that is the ring-sorted
        # index's O(log n) promise; a linear scan would blow straight
        # through this (observed ~16x).
        "scaling": [
            ("BM_GreedyNextHop/512", "BM_GreedyNextHop/8192", 4.0),
            # Per-packet crypto cost is bounded by the constant
            # sign/verify, not payload size: sealing/opening a full-MTU
            # frame must cost at most 2x a 64-byte one (measured ~1.1x;
            # a per-byte crypto path — or a payload copy smuggled into
            # the seal — blows straight through this).
            ("BM_SealInPlace/64", "BM_SealInPlace/1400", 2.0),
            ("BM_OpenInPlace/64", "BM_OpenInPlace/1400", 2.0),
        ],
    },
    "churn": {
        "default_baseline": "BENCH_churn_soak.json",
        "zero": [
            (r"^ChurnSoak/", "duplicate_leases"),
            (r"^ChurnSoak/", "lease_losses"),
        ],
        "floor": [
            (r"^ChurnSoak/", "resolution_success_rate", 0.99),
            (r"^ChurnSoak/", "lease_acquired_fraction", 0.99),
        ],
        "baseline_min": [
            (r"^ChurnSoak/", "resolution_success_rate", 0.005),
        ],
    },
    # The 10k-node scale soak, fed both the --shards 1 leg
    # (run name ChurnSoak/<N>) and the --shards 4 leg
    # (ChurnSoak/<N>/shards:4).  Same safety invariant (duplicate_leases
    # is exactly 0 — the DHT create() uniqueness guarantee) and the same
    # resolution/acquisition floors — the ^ChurnSoak/ regexes match BOTH
    # legs, so each is gated independently — but lease_losses is a
    # bounded ceiling instead of a strict zero: at 10 % churn/min over
    # 10k nodes a handful of renewals legitimately lose a split-brain
    # dispute to a concurrently re-leased address, and the client
    # re-acquires.  The ceiling keeps that a rare event, not a churn
    # storm.
    #
    # The "equal" rules pin the sharded engine's determinism contract:
    # the 4-shard run must replay the 1-shard run bit for bit, so its
    # event-trace digest and every deterministic counter are identical.
    # The "speedup" rule pins that sharding pays: the 4-shard leg's wall
    # clock must be at most 0.5x the 1-shard leg's (>= 2x speedup).
    # Both legs come from the same runner in the same job, so machine
    # speed cancels out of the ratio.
    "scale": {
        "default_baseline": None,
        "zero": [
            (r"^ChurnSoak/", "duplicate_leases"),
        ],
        "floor": [
            (r"^ChurnSoak/", "resolution_success_rate", 0.99),
            (r"^ChurnSoak/", "lease_acquired_fraction", 0.99),
        ],
        # (name regex, counter, max): fresh must be <= max.
        "ceiling": [
            (r"^ChurnSoak/", "lease_losses", 100),
        ],
        # (base run regex, other run regex, counter): exactly one run
        # must match each regex, and the counter must compare equal
        # (strings included — trace_digest is a sha1 hex).
        "equal": [
            (r"^ChurnSoak/\d+$", r"^ChurnSoak/\d+/shards:4$",
             "trace_digest"),
            (r"^ChurnSoak/\d+$", r"^ChurnSoak/\d+/shards:4$",
             "resolution_success_rate"),
            (r"^ChurnSoak/\d+$", r"^ChurnSoak/\d+/shards:4$",
             "lease_acquired_fraction"),
        ],
        # (base run regex, other run regex, counter, max ratio): the
        # other run's counter must be <= max ratio * the base run's.
        "speedup": [
            (r"^ChurnSoak/\d+$", r"^ChurnSoak/\d+/shards:4$",
             "wall_seconds", 0.5),
        ],
        "baseline_min": [],
    },
    # The hostile-internet soak: 64 nodes, all behind NATs in a
    # full-cone / restricted-cone / port-restricted / symmetric mix,
    # every 8th node on TCP, 10 % churn.  The floors follow RFC 3489
    # punchability physics measured on the committed baseline:
    #   - anything involving a full cone is directly dialable or
    #     trivially punched (measured 0.96-1.0);
    #   - cone-cone pairs punch via simultaneous open (rc-rc measured
    #     0.72: a punch that races an eviction or a symmetric re-dial
    #     falls back to relay, which is correct behavior — hence the
    #     lenient floor);
    #   - rc-sym punches because a restricted cone filters on IP only,
    #     and the symmetric side's fresh mapping still comes from the
    #     same IP (measured 0.94);
    #   - pr-sym and sym-sym CANNOT punch (the port-restricted side
    #     filters on the exact port, which the symmetric NAT rewrites
    #     per destination) — no rate floor, and instead
    #     nonrelayed_sym_sym == 0 pins that every such link went
    #     through the relay fallback rather than silently failing.
    # relayed_edge_fraction caps relay at fallback levels (measured
    # 0.23 with 2/16 of type slots symmetric); relay_wrap_bytes_copied
    # == 0 pins the per-path headroom contract on tunneled sends.
    # The CI job runs two legs through this suite: the attacker-free
    # soak (HostileSoak/<N>) and a --hijack-fraction leg
    # (HostileSoak/<N>/hijack) where a fraction of nodes forge
    # lease/ARP writes; hijacks_succeeded == 0 gates both.
    "hostile": {
        "default_baseline": "BENCH_hostile_soak.json",
        "zero": [
            (r"^HostileSoak/", "duplicate_leases"),
            (r"^HostileSoak/", "nonrelayed_sym_sym"),
            (r"^HostileSoak/", "relay_wrap_bytes_copied"),
            (r"^HostileSoak/", "bytes_copied_per_forward"),
            # Cryptographic ownership: forged lease/ARP writes (validly
            # signed by the attacker, bound to a victim's key) must all
            # be rejected at the storing node.  Every hostile run emits
            # the counter, so the attacker-free leg is pinned to 0 too
            # and the --hijack-fraction leg proves rejection under
            # active attack.
            (r"^HostileSoak/", "hijacks_succeeded"),
        ],
        "floor": [
            (r"^HostileSoak/", "resolution_success_rate", 0.99),
            (r"^HostileSoak/", "lease_acquired_fraction", 0.99),
        ],
        "ceiling": [
            (r"^HostileSoak/", "relayed_edge_fraction", 0.35),
        ],
        # (name regex, counter, floor, guard counter): fresh must be
        # >= floor, but only when the guard counter is present and
        # nonzero — an empty NAT-pair bucket reports a vacuous 1.0
        # that must neither pass nor fail the floor.
        "rate_floor": [
            (r"^HostileSoak/", "punch_success_rate_fc_fc", 0.90,
             "pairs_fc_fc"),
            (r"^HostileSoak/", "punch_success_rate_fc_rc", 0.90,
             "pairs_fc_rc"),
            (r"^HostileSoak/", "punch_success_rate_fc_pr", 0.90,
             "pairs_fc_pr"),
            (r"^HostileSoak/", "punch_success_rate_fc_sym", 0.75,
             "pairs_fc_sym"),
            (r"^HostileSoak/", "punch_success_rate_rc_rc", 0.50,
             "pairs_rc_rc"),
            (r"^HostileSoak/", "punch_success_rate_rc_pr", 0.85,
             "pairs_rc_pr"),
            (r"^HostileSoak/", "punch_success_rate_rc_sym", 0.75,
             "pairs_rc_sym"),
            (r"^HostileSoak/", "punch_success_rate_pr_pr", 0.80,
             "pairs_pr_pr"),
        ],
        "baseline_min": [
            (r"^HostileSoak/", "resolution_success_rate", 0.005),
        ],
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def runs(doc):
    return {
        b["name"]: b
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


def check(suite, fresh_doc, baseline_doc):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []
    fresh = runs(fresh_doc)
    baseline = runs(baseline_doc) if baseline_doc else {}

    def matching(rules_name_re):
        return [(n, b) for n, b in fresh.items() if re.search(rules_name_re, n)]

    for name_re, counter in suite["zero"]:
        matched = matching(name_re)
        if not matched:
            failures.append(f"no benchmark matches {name_re} (bench deleted?)")
            continue
        for name, bench in matched:
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value != 0:
                failures.append(
                    f"{name}: {counter} = {value} (must be exactly 0)")

    for name_re, counter, floor in suite["floor"]:
        for name, bench in matching(name_re):
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value < floor:
                failures.append(f"{name}: {counter} = {value} < floor {floor}")

    for name_re, counter, cap in suite.get("ceiling", ()):
        for name, bench in matching(name_re):
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value > cap:
                failures.append(f"{name}: {counter} = {value} > ceiling {cap}")

    for name_re, counter, floor, guard in suite.get("rate_floor", ()):
        for name, bench in matching(name_re):
            population = bench.get(guard)
            if population is None:
                failures.append(f"{name}: guard counter {guard} missing")
                continue
            if population == 0:
                continue  # empty bucket: the rate is vacuous, not gated
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value < floor:
                failures.append(
                    f"{name}: {counter} = {value} < floor {floor} "
                    f"(over {population} pairs)")

    for small_name, large_name, max_ratio in suite.get("scaling", ()):
        small, large = fresh.get(small_name), fresh.get(large_name)
        if small is None or large is None:
            failures.append(
                f"scaling rule {small_name} vs {large_name}: run missing "
                "(bench args trimmed?)")
            continue
        st, lt = small.get("cpu_time"), large.get("cpu_time")
        if not st or lt is None:
            failures.append(
                f"scaling rule {small_name} vs {large_name}: cpu_time missing")
        elif lt > st * max_ratio:
            failures.append(
                f"{large_name}: cpu_time {lt:.1f} > {max_ratio}x "
                f"{small_name} ({st:.1f}) — lookup no longer scales "
                "logarithmically")

    def single(name_re, rule_desc):
        matched = matching(name_re)
        if len(matched) != 1:
            failures.append(
                f"{rule_desc}: expected exactly one run matching {name_re}, "
                f"got {len(matched)} (soak leg missing or renamed?)")
            return None
        return matched[0]

    for base_re, other_re, counter in suite.get("equal", ()):
        desc = f"equal rule on {counter}"
        base, other = single(base_re, desc), single(other_re, desc)
        if base is None or other is None:
            continue
        bv, ov = base[1].get(counter), other[1].get(counter)
        if bv is None or ov is None:
            failures.append(f"{desc}: counter missing "
                            f"({base[0]}: {bv!r}, {other[0]}: {ov!r})")
        elif bv != ov:
            failures.append(
                f"{other[0]}: {counter} = {ov!r} != {base[0]}'s {bv!r} "
                "(shard legs must replay bit-for-bit)")

    for base_re, other_re, counter, max_ratio in suite.get("speedup", ()):
        desc = f"speedup rule on {counter}"
        base, other = single(base_re, desc), single(other_re, desc)
        if base is None or other is None:
            continue
        bv, ov = base[1].get(counter), other[1].get(counter)
        if not bv or ov is None:
            failures.append(f"{desc}: counter missing or zero "
                            f"({base[0]}: {bv!r}, {other[0]}: {ov!r})")
        elif ov > bv * max_ratio:
            failures.append(
                f"{other[0]}: {counter} {ov:.3f} > {max_ratio}x "
                f"{base[0]} ({bv:.3f}) — sharding no longer pays "
                "for itself")

    for name_re, counter, tolerance in suite["baseline_min"]:
        for name, bench in matching(name_re):
            base = baseline.get(name)
            if base is None or counter not in base:
                continue  # no committed reference for this run/counter
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value < base[counter] - tolerance:
                failures.append(
                    f"{name}: {counter} regressed to {value} "
                    f"(baseline {base[counter]}, tolerance {tolerance})")

    return failures


def self_test(suite, fresh_doc, baseline_doc):
    """The gate must fail when a gated counter is deliberately regressed."""
    clean = check(suite, fresh_doc, baseline_doc)
    if clean:
        print("self-test inconclusive: gate already failing:", file=sys.stderr)
        for f in clean:
            print(f"  {f}", file=sys.stderr)
        return 1

    def regress(counter_re, counter, value):
        doc = copy.deepcopy(fresh_doc)
        for b in doc["benchmarks"]:
            if re.search(counter_re, b["name"]) and counter in b:
                b[counter] = value
                break
        return doc

    # Regress every zero-rule counter on its first matching benchmark.
    for name_re, counter in suite["zero"]:
        if not check(suite, regress(name_re, counter, 1456.0), baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {name_re} "
                  "was not caught", file=sys.stderr)
            return 1

    # Drop every floored counter below its floor.
    for name_re, counter, floor in suite["floor"]:
        if not check(suite, regress(name_re, counter, floor * 0.5),
                     baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {name_re} "
                  "was not caught", file=sys.stderr)
            return 1

    # Push every ceilinged counter past its cap.
    for name_re, counter, cap in suite.get("ceiling", ()):
        if not check(suite, regress(name_re, counter, cap + 1), baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {name_re} "
                  "was not caught", file=sys.stderr)
            return 1

    # Drop every guarded rate below its floor (only conclusive when the
    # guard bucket is populated in the fresh run), then verify the guard
    # itself: a regressed rate over an EMPTY bucket must NOT fail the
    # gate — that is the rule's defining semantic.
    for name_re, counter, floor, guard in suite.get("rate_floor", ()):
        populated = any(b.get(guard) for _n, b in runs(fresh_doc).items()
                        if re.search(name_re, _n))
        if populated:
            if not check(suite, regress(name_re, counter, floor * 0.5),
                         baseline_doc):
                print(f"self-test FAILED: regressed {counter} on {name_re} "
                      "was not caught", file=sys.stderr)
                return 1
        vacuous = regress(name_re, counter, 0.0)
        for b in vacuous["benchmarks"]:
            if re.search(name_re, b["name"]) and guard in b:
                b[guard] = 0
                break
        if check(suite, vacuous, baseline_doc):
            print(f"self-test FAILED: {counter} on {name_re} gated an "
                  "empty bucket (guard not honored)", file=sys.stderr)
            return 1

    # Blow the large run's cpu_time past every scaling ratio.
    for small_name, large_name, max_ratio in suite.get("scaling", ()):
        doc = copy.deepcopy(fresh_doc)
        for b in doc["benchmarks"]:
            if b["name"] == large_name and "cpu_time" in b:
                b["cpu_time"] = b["cpu_time"] * max_ratio * 100.0
                break
        if not check(suite, doc, baseline_doc):
            print(f"self-test FAILED: {large_name} scaling blow-up "
                  "was not caught", file=sys.stderr)
            return 1

    # Flip every equality-pinned counter on the non-base leg: a digest
    # or counter drift between shard legs must be caught.  The regressed
    # value keeps the counter's type (and stays above any floor) so only
    # the equal rule can be the one that fires.
    for _base_re, other_re, counter in suite.get("equal", ()):
        doc = copy.deepcopy(fresh_doc)
        for b in doc["benchmarks"]:
            if re.search(other_re, b["name"]) and counter in b:
                b[counter] = ("0xdeadbeef" if isinstance(b[counter], str)
                              else b[counter] + 1456.0)
                break
        if not check(suite, doc, baseline_doc):
            print(f"self-test FAILED: diverged {counter} on {other_re} "
                  "was not caught", file=sys.stderr)
            return 1

    # Blow the sharded leg's wall clock past every speedup ratio.
    for _base_re, other_re, counter, _max_ratio in suite.get("speedup", ()):
        if not check(suite, regress(other_re, counter, 1.0e12),
                     baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {other_re} "
                  "was not caught", file=sys.stderr)
            return 1

    # Regress baseline-relative counters beyond their tolerance (only
    # conclusive when the committed baseline actually names this run).
    for name_re, counter, tolerance in suite["baseline_min"]:
        base_runs = runs(baseline_doc) if baseline_doc else {}
        if not any(re.search(name_re, n) and counter in b
                   for n, b in base_runs.items()):
            continue
        if not check(suite, regress(name_re, counter, -1.0), baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {name_re} "
                  "was not caught", file=sys.stderr)
            return 1

    print("self-test OK: gate fails on deliberately regressed counters")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("fresh", nargs="+",
                    help="bench JSON from this run; several files are "
                         "merged into one run table (scale suite: pass "
                         "the --shards 1 and --shards 4 legs together)")
    ap.add_argument("--suite", choices=sorted(SUITES), default="micro",
                    help="rule set to apply (default: %(default)s)")
    ap.add_argument("--baseline", default=None,
                    help="committed reference JSON "
                         "(default: the suite's committed file)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate catches regressed counters")
    args = ap.parse_args()

    suite = SUITES[args.suite]
    baseline_path = args.baseline or suite["default_baseline"]

    fresh_doc = load(args.fresh[0])
    for extra in args.fresh[1:]:
        fresh_doc.setdefault("benchmarks", []).extend(
            load(extra).get("benchmarks", []))
    baseline_doc = None
    if baseline_path is not None:
        try:
            baseline_doc = load(baseline_path)
        except FileNotFoundError:
            print(f"warning: baseline {baseline_path} not found; "
                  "baseline-relative rules skipped", file=sys.stderr)

    if args.self_test:
        sys.exit(self_test(suite, fresh_doc, baseline_doc))

    failures = check(suite, fresh_doc, baseline_doc)
    if failures:
        print(f"bench gate FAILED ({args.suite}):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"bench gate OK ({args.suite}): invariants hold, "
          "no key-counter regressions")


if __name__ == "__main__":
    main()
