#!/usr/bin/env python3
"""Bench-regression gate for bench_micro_core JSON output.

Usage:
    tools/bench_gate.py FRESH.json [--baseline BENCH_micro_core.json]
    tools/bench_gate.py FRESH.json --self-test

Two classes of deterministic checks (wall-clock timings are deliberately
NOT gated — CI machines are too noisy):

  * zero-copy invariants: the counters that prove the scatter-gather
    pipeline ships 0 CPU payload copies must be exactly 0.
  * key-counter regressions vs the committed baseline: batching
    amortization (datagrams_per_syscall) must not fall below the
    baseline, and delivery fractions must stay near 1.

--self-test verifies the gate actually fails on a deliberately regressed
copy counter (and on a lost batch amortization), then exits 0.  CI runs
it after the real gate so a silently broken parser cannot pass green.
"""

import argparse
import copy
import json
import re
import sys

# Counters that must be exactly 0 for matching benchmark names.  The
# ablation/legacy variants (BM_ForwardHopCopy, BM_NatRewriteCopyAtCrossing,
# BM_NatForwardSim/1/*, BM_UdpFanoutCopyPerDest) are intentionally absent:
# their nonzero counters are the comparison, not a regression.
ZERO_RULES = [
    (r"^BM_ForwardHopZeroCopy/", "bytes_copied_per_hop"),
    (r"^BM_NatRewriteInPlace/", "bytes_copied_per_forward"),
    (r"^BM_NatForwardSim/0/", "bytes_copied_per_forward"),
    (r"^BM_TcpEdgeStreamSend/", "bytes_copied_per_send"),
    (r"^BM_UdpFanoutBatchShared/", "bytes_copied_per_datagram"),
]

# (name regex, counter, absolute floor): fresh value must be >= floor.
FLOOR_RULES = [
    (r"^BM_NatForwardSim/0/", "delivered_fraction", 0.9),
    (r"^BM_TcpEdgeStreamSend/", "delivered_fraction", 0.9),
]

# (name regex, counter): fresh value must be >= the committed baseline's
# (deterministic amortization counters; a drop means batching broke).
BASELINE_MIN_RULES = [
    (r"^BM_UdpFanoutBatchShared/", "datagrams_per_syscall"),
]


def load(path):
    with open(path) as f:
        return json.load(f)


def runs(doc):
    return {
        b["name"]: b
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


def check(fresh_doc, baseline_doc):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []
    fresh = runs(fresh_doc)
    baseline = runs(baseline_doc) if baseline_doc else {}

    def matching(rules_name_re):
        return [(n, b) for n, b in fresh.items() if re.search(rules_name_re, n)]

    for name_re, counter in ZERO_RULES:
        matched = matching(name_re)
        if not matched:
            failures.append(f"no benchmark matches {name_re} (bench deleted?)")
            continue
        for name, bench in matched:
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value != 0:
                failures.append(
                    f"{name}: {counter} = {value} (zero-copy invariant broken)")

    for name_re, counter, floor in FLOOR_RULES:
        for name, bench in matching(name_re):
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value < floor:
                failures.append(f"{name}: {counter} = {value} < floor {floor}")

    for name_re, counter in BASELINE_MIN_RULES:
        for name, bench in matching(name_re):
            base = baseline.get(name)
            if base is None or counter not in base:
                continue  # no committed reference for this run/counter
            value = bench.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter} missing")
            elif value < base[counter]:
                failures.append(
                    f"{name}: {counter} regressed to {value} "
                    f"(baseline {base[counter]})")

    return failures


def self_test(fresh_doc, baseline_doc):
    """The gate must fail when a gated counter is deliberately regressed."""
    clean = check(fresh_doc, baseline_doc)
    if clean:
        print("self-test inconclusive: gate already failing:", file=sys.stderr)
        for f in clean:
            print(f"  {f}", file=sys.stderr)
        return 1

    # Regress every zero-rule counter on its first matching benchmark.
    for name_re, counter in ZERO_RULES:
        doc = copy.deepcopy(fresh_doc)
        for b in doc["benchmarks"]:
            if re.search(name_re, b["name"]) and counter in b:
                b[counter] = 1456.0
                break
        if not check(doc, baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {name_re} "
                  "was not caught", file=sys.stderr)
            return 1

    # Regress the batch amortization below its committed baseline.
    for name_re, counter in BASELINE_MIN_RULES:
        doc = copy.deepcopy(fresh_doc)
        for b in doc["benchmarks"]:
            if re.search(name_re, b["name"]) and counter in b:
                b[counter] = 0.5
                break
        if not check(doc, baseline_doc):
            print(f"self-test FAILED: regressed {counter} on {name_re} "
                  "was not caught", file=sys.stderr)
            return 1

    print("self-test OK: gate fails on deliberately regressed counters")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="bench_micro_core JSON from this run")
    ap.add_argument("--baseline", default="BENCH_micro_core.json",
                    help="committed reference JSON (default: %(default)s)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate catches a regressed counter")
    args = ap.parse_args()

    fresh_doc = load(args.fresh)
    try:
        baseline_doc = load(args.baseline)
    except FileNotFoundError:
        print(f"warning: baseline {args.baseline} not found; "
              "baseline-relative rules skipped", file=sys.stderr)
        baseline_doc = None

    if args.self_test:
        sys.exit(self_test(fresh_doc, baseline_doc))

    failures = check(fresh_doc, baseline_doc)
    if failures:
        print("bench gate FAILED:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("bench gate OK: zero-copy invariants hold, "
          "no key-counter regressions")


if __name__ == "__main__":
    main()
