// lint-fixture-path: src/ipop/fixture_timer_lifetime.cpp
//
// Known-bad timer-lifetime snippets: schedule_after/schedule_at lambdas
// capturing `this` (or by reference) with the EventId discarded and no
// weak/alive guard must fire; retained handles, guarded captures and
// allowlisted lines must not.
// NOT part of the build — compiled only by `tools/lint/run.py --self-test`.
#include <cstdint>
#include <functional>
#include <memory>

namespace fixture {

struct Loop {
  using EventId = std::uint64_t;
  EventId schedule_after(long d, std::function<void()> cb);
  EventId schedule_at(long t, std::function<void()> cb);
  void cancel(EventId id);
};

struct Owner {
  Loop& loop_;
  Loop::EventId timer_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  int x_ = 0;

  void tick();
  void tock(int x);

  void bad_raw_this() {
    loop_.schedule_after(100, [this] { tick(); });  // expect(timer-lifetime)
  }

  void bad_at_with_value() {
    loop_.schedule_at(7, [this, x = x_] { tock(x); });  // expect(timer-lifetime)
  }

  void bad_by_reference() {
    loop_.schedule_after(100, [&] { tick(); });  // expect(timer-lifetime)
  }

  void ok_handle_retained() {
    timer_ = loop_.schedule_after(100, [this] { tick(); });
  }

  Loop::EventId ok_handle_returned() {
    return loop_.schedule_after(100, [this] { tick(); });
  }

  void ok_weak_guard() {
    loop_.schedule_after(
        100, [this, alive = std::weak_ptr<bool>(alive_)] {
          if (alive.expired()) return;
          tick();
        });
  }

  void ok_value_only_capture(int snapshot) {
    // Copies have their own lifetime; nothing to outlive.
    loop_.schedule_after(100, [snapshot] { (void)snapshot; });
  }

  void ok_allowlisted() {
    loop_.schedule_after(100, [this] { tick(); });  // lint:allow(timer-lifetime): Owner outlives the loop in every fixture
  }
};

}  // namespace fixture
