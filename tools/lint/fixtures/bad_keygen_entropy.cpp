// lint-fixture-path: src/brunet/fixture_keygen_entropy.cpp
//
// Known-bad key-generation entropy snippets: OS entropy sources and
// keypairs minted from anything but the seeded sim RNG must fire; the
// seeded-RNG call and allowlisted injected material must not.  A
// non-deterministic keypair forks the node address, the DHT layout and
// every signed record downstream of it on the first replay.
// NOT part of the build — compiled only by `tools/lint/run.py --self-test`.
#include <cstdint>
#include <fstream>
#include <sys/random.h>

namespace fixture {

struct Rng {
  std::uint64_t next();
};

struct KeyPair {
  static KeyPair generate(Rng& rng);
  static KeyPair from_entropy(const unsigned char* seed);
};

KeyPair operator_provisioned_material();

inline KeyPair os_entropy_keypair() {
  unsigned char seed[32];
  getrandom(seed, sizeof(seed), 0);  // expect(determinism)
  return KeyPair::from_entropy(seed);
}

inline KeyPair dev_random_keypair() {
  std::ifstream dev("/dev/urandom", std::ios::binary);  // expect(determinism)
  unsigned char seed[32];
  dev.read(reinterpret_cast<char*>(seed), sizeof(seed));
  return KeyPair::from_entropy(seed);
}

inline std::uint32_t bsd_entropy() {
  return arc4random();  // expect(determinism)
}

inline KeyPair ad_hoc_keypair(std::uint64_t node_index) {
  return KeyPair::generate(node_index);  // expect(determinism)
}

inline KeyPair seeded_keypair(Rng& rng) {
  // The seeded sim RNG is the only legitimate key entropy: silent.
  return KeyPair::generate(rng);
}

inline KeyPair injected_keypair() {
  // lint:allow(determinism): operator-provisioned key material, injected
  return KeyPair::generate(operator_provisioned_material());
}

}  // namespace fixture
