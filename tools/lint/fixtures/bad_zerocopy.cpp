// lint-fixture-path: src/net/fixture_zerocopy.cpp
//
// Known-bad zero-copy snippets: every deep copy of packet bytes on the
// hot path must fire, header-field copies and allowlisted lines must not.
// NOT part of the build — compiled only by `tools/lint/run.py --self-test`.
#include <algorithm>
#include <cstring>
#include <vector>

namespace fixture {

struct Buffer {
  Buffer clone(unsigned headroom = 0) const;
  std::vector<unsigned char> to_vector() const;
  static Buffer copy_of(const unsigned char* p, unsigned n);
  unsigned char* data();
  unsigned size() const;
};
struct Chain {
  Buffer coalesce() const;
};
struct Packet {
  Buffer payload;
};

inline void deep_copies(Packet& pkt, const Packet& src, Chain& chain,
                        unsigned char* dst_payload, unsigned char* hdr) {
  std::memcpy(dst_payload, pkt.payload.data(), pkt.payload.size());  // expect(zero-copy)
  std::copy(src.payload.data(),  // expect(zero-copy)
            src.payload.data() + src.payload.size(), dst_payload);
  pkt.payload = src.payload.clone();        // expect(zero-copy)
  auto flat = chain.coalesce();             // expect(zero-copy)
  auto vec = pkt.payload.to_vector();       // expect(zero-copy)
  auto copy = Buffer::copy_of(pkt.payload.data(), pkt.payload.size());  // expect(zero-copy)
  // A header-field copy carries no payload bytes and must stay silent:
  std::memcpy(hdr, dst_payload, 14);
  (void)flat;
  (void)vec;
  (void)copy;
}

inline void allowlisted(Packet& pkt) {
  // The pragma (with a reason) silences the rule on its line:
  pkt.payload = pkt.payload.clone();  // lint:allow(zero-copy): explicit COW before an in-place patch
}

}  // namespace fixture
