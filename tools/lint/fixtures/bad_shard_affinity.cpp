// lint-fixture-path: src/sim/fixture_shard_affinity.cpp
//
// Known-bad shard-affinity snippets: scheduling through another
// component's loop() accessor and delivery callbacks mutating
// sender-shard link state must fire; same-loop scheduling, receiver-side
// counters, sender-side mutation in the *argument list* (evaluated on
// the send thread) and allowlisted lines must not.
// NOT part of the build — compiled only by `tools/lint/run.py --self-test`.
#include <cstdint>
#include <functional>

namespace fixture {

struct Loop {
  using EventId = std::uint64_t;
  EventId schedule_at(long t, std::function<void()> cb);
  EventId schedule_delivery(long t, std::uint64_t stream, std::uint64_t seq,
                            std::uint32_t aux, std::function<void()> cb);
};

struct StampedEvent {
  long at;
  std::uint64_t stream, seq;
  std::uint32_t aux;
  std::function<void()> cb;
};

struct Channel {
  void push(StampedEvent ev);
};

struct Peer {
  Loop& loop();
};

struct Direction {
  long tx_free_at = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped_queue = 0;
  std::uint64_t frames_dropped_loss = 0;
  std::uint64_t seq = 0;
  std::uint64_t rx_frames_delivered = 0;
};

struct Fixture {
  Loop local_;
  Peer peer_;
  Channel ch_;
  Direction d_;

  void bad_foreign_schedule(std::function<void()> cb) {
    peer_.loop().schedule_at(5, cb);  // expect(shard-affinity)
  }

  void bad_sender_counter_in_delivery() {
    Direction& d = d_;
    local_.schedule_delivery(9, 1, 2, 64, [&d] {
      ++d.frames_sent;  // expect(shard-affinity)
    });
  }

  void bad_tx_horizon_in_delivery() {
    Direction& d = d_;
    local_.schedule_delivery(9, 1, 3, 64, [&d] {
      d.tx_free_at += 3;  // expect(shard-affinity)
    });
  }

  void bad_drop_counter_in_channel_push() {
    Direction& d = d_;
    ch_.push(StampedEvent{9, 1, 4, 64, [&d] {
      d.frames_dropped_queue = 0;  // expect(shard-affinity)
    }});
  }

  void ok_receiver_side_counters() {
    Direction& d = d_;
    local_.schedule_delivery(9, 1, 5, 64, [&d] {
      ++d.rx_frames_delivered;  // receiver-shard state: fine
    });
  }

  void ok_sender_mutation_in_arg_list() {
    Direction& d = d_;
    // d.seq++ in the argument list runs on the send thread at call time
    // (and `seq` is not a flagged field); only the callback body is
    // receiver-shard.
    local_.schedule_delivery(9, 1, d.seq++, 64, [] {});
  }

  void ok_read_without_mutation(std::uint64_t* out) {
    Direction& d = d_;
    local_.schedule_delivery(9, 1, 6, 64, [&d, out] {
      *out = d.frames_sent;  // read: the receiver may observe, not write
    });
  }

  void ok_same_object_loop(std::function<void()> cb) {
    local_.schedule_at(5, cb);  // no foreign loop() hop
  }

  void ok_allowlisted() {
    Direction& d = d_;
    local_.schedule_delivery(9, 1, 7, 64, [&d] {
      ++d.frames_sent;  // lint:allow(shard-affinity): fixture proves the pragma
    });
  }
};

}  // namespace fixture
