// lint-fixture-path: src/brunet/fixture_determinism.cpp
//
// Known-bad determinism snippets: wall clocks, unseeded randomness and
// hash-order iteration that reaches the wire must fire; order-insensitive
// iteration and allowlisted lines must not.
// NOT part of the build — compiled only by `tools/lint/run.py --self-test`.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <sys/time.h>
#include <unordered_map>

namespace fixture {

void encode_entry(int key, int value);

inline long wall_clock_now() {
  return time(nullptr);  // expect(determinism)
}

inline long wall_clock_us() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);  // expect(determinism)
  return tv.tv_usec;
}

inline auto wall_clock_chrono() {
  return std::chrono::system_clock::now();  // expect(determinism)
}

inline int unseeded() {
  return rand();  // expect(determinism)
}

inline unsigned hardware_entropy() {
  std::random_device rd;  // expect(determinism)
  return rd();
}

struct Registry {
  std::unordered_map<int, int> table_;

  void broadcast_all() {
    for (const auto& [key, value] : table_) {  // expect(determinism)
      encode_entry(key, value);
    }
  }

  int local_sum() const {
    int sum = 0;
    // Order-insensitive aggregation never leaves the node: silent.
    for (const auto& [key, value] : table_) {
      sum += value;
    }
    return sum;
  }

  void xor_digest() {
    // lint:allow(determinism): XOR digest is iteration-order independent
    for (const auto& [key, value] : table_) {
      encode_entry(key ^ value, 0);
    }
  }
};

}  // namespace fixture
