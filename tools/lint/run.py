#!/usr/bin/env python3
"""Invariant-enforcing lint pass for the IPOP repo.

Three rule families, each protecting a property the compiler cannot see
(and the test suite can only sample):

  zero-copy       The data plane must not deep-copy packet bytes.  Inside
                  the hot-path trees (src/brunet/, src/net/, src/ipop/)
                  this flags Buffer/BufferChain deep copies (.clone(),
                  Buffer::copy_of(), .to_vector(), .coalesce()) and
                  memcpy/std::copy statements that touch packet payloads.
                  The bench gate proves the property at runtime for the
                  paths it samples; this rule proves it at the source
                  level for every path.

  determinism     The simulation must stay bit-for-bit reproducible.
                  Bans wall-clock sources (std::chrono::system_clock,
                  time(), gettimeofday(), clock_gettime(), localtime(),
                  gmtime()), unseeded randomness (rand(), srand(),
                  std::random_device) and ad-hoc entropy (getrandom(),
                  getentropy(), arc4random(), RAND_bytes(),
                  /dev/[u]random) anywhere in src/ — in particular
                  keypair generation (KeyPair/NodeIdentity::generate)
                  must draw from the seeded util::Rng or be injected,
                  since the node address and every signature derive
                  from it.  Also flags
                  range-for iteration over std::unordered_map/
                  unordered_set whose body reaches a wire-encode or
                  DHT-ordering decision: hash-order leaking onto the wire
                  breaks reproducible runs, which the upcoming
                  cross-shard time-window sync depends on.

  timer-lifetime  EventLoop callbacks must not outlive their owners.
                  Flags EventLoop::schedule_after/schedule_at calls whose
                  lambda captures `this` (or captures by reference) while
                  BOTH discarding the returned EventId (no cancellation
                  handle) AND carrying no weak_ptr/alive guard in the
                  capture list.  This is the exact use-after-free class
                  ASan has caught twice in transport teardown.

  shard-affinity  Cross-shard interaction in src/sim/ must go through
                  engine Channels.  Flags (a) a direct schedule through
                  another component's loop() accessor — under sharding
                  that loop may belong to a peer shard, and scheduling
                  onto it from this thread is a data race on the heap —
                  and (b) delivery callbacks (schedule_delivery /
                  StampedEvent spans) that mutate sender-shard link state
                  (tx_free_at, frames_sent, frames_dropped_*): the
                  callback executes on the receiver's shard, so those
                  writes would race the transmit path.

Per-line allowlist pragma (a reason is required):

    some_code();  // lint:allow(zero-copy): explicit COW before patch

A pragma on its own line applies to the next line of code; multiple
rules may be listed comma-separated: ``lint:allow(zero-copy,determinism): why``.

Engines: when the Python libclang bindings (clang.cindex) are importable
and a libclang shared object is found, range-for container types are
resolved from the AST of each translation unit in the CMake-exported
compile_commands.json (precise against typedefs/auto).  Otherwise a
built-in lexer engine resolves container types from declarations seen
across the repo (sound for this codebase's style, and what the
self-test fixtures pin down).  All other checks are token/statement
level and identical under both engines.

Usage:
    tools/lint/run.py [--build-dir BUILD] [--engine auto|clang|text]
                      [--json OUT.json] [--self-test] [paths...]

Exit status: 0 = clean (or self-test passed), 1 = findings (or
self-test failed), 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

RULES = ("zero-copy", "determinism", "timer-lifetime", "shard-affinity")

# Directories whose files are on the packet hot path (zero-copy scope).
HOT_PATH_DIRS = ("src/brunet/", "src/net/", "src/ipop/")

# Wall-clock / nondeterminism sources banned in src/.  Each entry is
# (regex, short description).  Matches run over comment/string-blanked
# code, so prose mentions do not fire.
BANNED_CALLS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock (wall clock)"),
    (re.compile(r"(?<![\w:.])time\s*\("), "time() (wall clock)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday() (wall clock)"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime() (wall clock)"),
    (re.compile(r"\blocaltime(_r)?\s*\("), "localtime() (wall clock)"),
    (re.compile(r"\bgmtime(_r)?\s*\("), "gmtime() (wall clock)"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() (unseeded randomness)"),
    (re.compile(r"\brandom_device\b"), "std::random_device (unseeded randomness)"),
    (re.compile(r"\bgetrandom\s*\("), "getrandom() (OS entropy)"),
    (re.compile(r"\bgetentropy\s*\("), "getentropy() (OS entropy)"),
    (re.compile(r"\barc4random(?:_buf|_uniform)?\s*\("), "arc4random() (OS entropy)"),
    (re.compile(r"\bRAND_bytes\s*\("), "RAND_bytes() (OS entropy)"),
]

# Key generation must draw from the seeded sim RNG (or take injected key
# material); any other entropy forks otherwise-identical runs at the
# first keypair — and the node address, the DHT layout and every signed
# record downstream of it.  Name-based on purpose: every legitimate call
# site passes a util::Rng whose spelling contains "rng".
KEYGEN_CALL_RE = re.compile(r"\b(?:KeyPair|NodeIdentity)::generate\s*\(")
RNG_ARG_RE = re.compile(r"rng", re.I)
# String literals are blanked, so /dev/random paths are scanned in raw
# text (comment-only mentions are skipped).
DEV_RANDOM_RE = re.compile(r"/dev/u?random")

# A range-for body "reaches the wire" (or a DHT ordering decision) when it
# calls anything matching this.  Deliberately name-based: the codebase's
# wire writers are encode*/serialize*/send*/emit*/wire*, routing decisions
# go through route*/closest*/next_hop*, and DHT placement through
# put/create/replicate*/handoff*.
WIRE_CALL_RE = re.compile(
    r"\b(?:encode\w*|serializ\w*|send\w*|emit\w*|wire\w*|route\w*|"
    r"closest\w*|next_hop\w*|replicat\w*|handoff\w*|broadcast\w*|"
    r"put|create)\s*\("
)

# Deep-copy operations on the packet ownership types.
ZC_PATTERNS = [
    (re.compile(r"\.\s*clone\s*\("), "Buffer::clone() deep copy"),
    (re.compile(r"\bBuffer::copy_of\s*\("), "Buffer::copy_of() deep copy"),
    (re.compile(r"\.\s*coalesce\s*\("), "BufferChain::coalesce() flattens the chain"),
    (re.compile(r"\.\s*to_vector\s*\("), "Buffer::to_vector() deep copy"),
]
ZC_RAW_COPY_RE = re.compile(r"\b(?:memcpy|memmove|std::copy(?:_n|_backward)?)\s*\(")
ZC_PAYLOAD_HINT_RE = re.compile(r"\bpayload\b|\bPayload\b")

SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:after|at)\s*\(")
GUARD_CAPTURE_RE = re.compile(r"weak_ptr|weak_from_this|weak|alive|guard", re.I)

# shard-affinity: scheduling through another component's loop() accessor.
SHARD_FOREIGN_SCHED_RE = re.compile(
    r"\b\w+\s*(?:\.|->)\s*loop\s*\(\)\s*(?:\.|->)\s*schedule_\w+\s*\(")
# shard-affinity: spans that become receiver-shard delivery callbacks.
SHARD_DELIVERY_SPAN_RE = re.compile(
    r"\bschedule_delivery\s*\(|\bStampedEvent\s*\{")
# Link sender-shard state; mutating it inside a delivery span races the
# transmit path.
SHARD_SENDER_FIELDS_RE = re.compile(
    r"\b(tx_free_at|frames_sent|frames_dropped_queue|frames_dropped_loss)\b")

ALLOW_PRAGMA_RE = re.compile(
    r"lint:allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)\s*:\s*(\S.*)"
)
ALLOW_NO_REASON_RE = re.compile(r"lint:allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)")
FIXTURE_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")
EXPECT_RE = re.compile(r"expect\(([a-z-]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}]*?>\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\))"
)


@dataclass
class Finding:
    path: str  # repo-relative
    line: int  # 1-based
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str          # repo-relative ("fixture path" for self-test files)
    raw: str
    blanked: str = ""  # comments and string/char literals replaced by spaces
    allow: dict = field(default_factory=dict)   # line -> set of rules
    comments: dict = field(default_factory=dict)  # line -> comment text

    @property
    def blanked_lines(self):
        return self.blanked.split("\n")


def blank_comments_and_strings(text: str):
    """Replace comment bodies and string/char literal contents with spaces,
    preserving offsets and newlines.  Returns (blanked, comments) where
    comments maps 1-based line -> concatenated comment text on that line."""
    out = list(text)
    comments: dict[int, str] = {}
    i, n = 0, len(text)
    line = 1

    def record(ln: int, s: str):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            record(line, text[i:j])
            for k in range(i, j):
                out[k] = " "
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            record(line, text[i:j])
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, j)
            i = j
            continue
        if c == 'R' and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                for k in range(i + m.end(), j):
                    if out[k] != "\n":
                        out[k] = " "
                line += text.count("\n", i, j)
                i = j
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                out[k] = " "
            i = min(j + 1, n)
            continue
        i += 1
    return "".join(out), comments


def parse_allow_pragmas(sf: SourceFile, findings: list):
    """Fill sf.allow from comment pragmas.  A pragma on a code line covers
    that line; a pragma on a comment-only line covers the next line that
    contains code."""
    blanked_lines = sf.blanked_lines
    for ln, comment in sorted(sf.comments.items()):
        m = ALLOW_PRAGMA_RE.search(comment)
        if not m:
            if ALLOW_NO_REASON_RE.search(comment):
                findings.append(Finding(
                    sf.path, ln, "lint-pragma",
                    "lint:allow pragma without a reason — write "
                    "'// lint:allow(<rule>): <why>'"))
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        unknown = rules - set(RULES)
        if unknown:
            findings.append(Finding(
                sf.path, ln, "lint-pragma",
                f"unknown rule(s) in lint:allow: {', '.join(sorted(unknown))}"))
            rules -= unknown
        target = ln
        if ln - 1 < len(blanked_lines) and not blanked_lines[ln - 1].strip():
            # Comment-only line: cover the next line holding code.
            nxt = ln + 1
            while nxt <= len(blanked_lines) and not blanked_lines[nxt - 1].strip():
                nxt += 1
            target = nxt
        sf.allow.setdefault(target, set()).update(rules)


def load_source(path: str, repo_rel: str) -> SourceFile:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    sf = SourceFile(path=repo_rel, raw=raw)
    sf.blanked, sf.comments = blank_comments_and_strings(raw)
    return sf


# --- statement / balanced-region helpers ------------------------------------

def line_of_offset(text: str, off: int) -> int:
    return text.count("\n", 0, off) + 1


def statement_prefix(text: str, off: int) -> str:
    """Text from the previous ';', '{' or '}' up to off (same statement)."""
    start = max(text.rfind(";", 0, off), text.rfind("{", 0, off),
                text.rfind("}", 0, off))
    return text[start + 1:off]


def statement_around(text: str, off: int, max_span: int = 600) -> str:
    start = max(text.rfind(";", 0, off), text.rfind("{", 0, off),
                text.rfind("}", 0, off))
    end = text.find(";", off)
    if end == -1 or end - off > max_span:
        end = min(off + max_span, len(text))
    return text[start + 1:end + 1]


def balanced_region(text: str, open_off: int, open_ch: str, close_ch: str):
    """Extent of a balanced region starting at text[open_off] == open_ch.
    Returns (content, end_off) with end_off past the closer, or (None, -1)."""
    depth = 0
    for i in range(open_off, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return text[open_off + 1:i], i + 1
    return None, -1


def split_top_level(s: str, sep: str = ","):
    parts, depth, cur = [], 0, []
    for c in s:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


# --- rule: zero-copy --------------------------------------------------------

def check_zero_copy(sf: SourceFile, findings: list):
    if not any(sf.path.startswith(d) for d in HOT_PATH_DIRS):
        return
    text = sf.blanked
    for pat, what in ZC_PATTERNS:
        for m in pat.finditer(text):
            findings.append(Finding(
                sf.path, line_of_offset(text, m.start()), "zero-copy",
                f"{what} on the packet hot path"))
    for m in ZC_RAW_COPY_RE.finditer(text):
        stmt = statement_around(text, m.start())
        if ZC_PAYLOAD_HINT_RE.search(stmt):
            findings.append(Finding(
                sf.path, line_of_offset(text, m.start()), "zero-copy",
                "raw byte copy touching a packet payload on the hot path"))


# --- rule: determinism ------------------------------------------------------

def collect_unordered_names(sources) -> set:
    names = set()
    for sf in sources:
        for m in UNORDERED_DECL_RE.finditer(sf.blanked):
            names.add(m.group(1))
    return names


def base_identifier(expr: str) -> str:
    """Base name of a range expression: 'this->foo_' -> 'foo_',
    'obj.bar()' -> '', 'ns::tbl_' -> 'tbl_', 'tbl_' -> 'tbl_'."""
    expr = expr.strip()
    if expr.endswith(")"):  # function-call result: not a plain member read
        return ""
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return m.group(1) if m else ""


def iter_range_fors(text: str):
    """Yield (offset, range_expr, body_text) for each range-for."""
    for m in re.finditer(r"\bfor\s*\(", text):
        paren_open = m.end() - 1
        head, after = balanced_region(text, paren_open, "(", ")")
        if head is None or ";" in head:
            continue  # classic for loop
        parts = split_top_level(head, ":")
        if len(parts) < 2:
            continue
        range_expr = parts[-1]
        i = after
        while i < len(text) and text[i] in " \t\n":
            i += 1
        if i < len(text) and text[i] == "{":
            body, _ = balanced_region(text, i, "{", "}")
            body = body or ""
        else:
            end = text.find(";", i)
            body = text[i:end if end != -1 else len(text)]
        yield m.start(), range_expr, body


def check_determinism(sf: SourceFile, findings: list, unordered_names: set,
                      clang_unordered_fors=None):
    text = sf.blanked
    for pat, what in BANNED_CALLS:
        for m in pat.finditer(text):
            findings.append(Finding(
                sf.path, line_of_offset(text, m.start()), "determinism",
                f"{what} breaks bit-for-bit reproducible runs; use the "
                "EventLoop clock / seeded util::Rng"))

    if clang_unordered_fors is not None:
        # AST-resolved: list of (line, range_spelling, body_first, body_last).
        lines = text.split("\n")
        for ln, spelling, b0, b1 in clang_unordered_fors:
            body = "\n".join(lines[b0 - 1:min(b1, len(lines))])
            m = WIRE_CALL_RE.search(body)
            if m:
                findings.append(Finding(
                    sf.path, ln, "determinism",
                    f"range-for over unordered container '{spelling}' "
                    f"reaches wire/ordering call '{m.group(0).rstrip('(').strip()}' "
                    "— hash iteration order leaks into the wire/DHT"))
        return

    for off, range_expr, body in iter_range_fors(text):
        name = base_identifier(range_expr)
        if not name or name not in unordered_names:
            continue
        m = WIRE_CALL_RE.search(body)
        if m:
            findings.append(Finding(
                sf.path, line_of_offset(text, off), "determinism",
                f"range-for over unordered container '{name}' reaches "
                f"wire/ordering call '{m.group(0).rstrip('(').strip()}' "
                "— hash iteration order leaks into the wire/DHT"))


def check_keygen_entropy(sf: SourceFile, findings: list):
    """Determinism-family entropy rule: keypairs come from the seeded sim
    RNG or arrive injected — never from ad-hoc entropy."""
    text = sf.blanked
    for m in KEYGEN_CALL_RE.finditer(text):
        args, _ = balanced_region(text, m.end() - 1, "(", ")")
        if args is None or RNG_ARG_RE.search(args):
            continue
        findings.append(Finding(
            sf.path, line_of_offset(text, m.start()), "determinism",
            "key generation from ad-hoc entropy — keypairs must draw from "
            "the seeded util::Rng (or be injected), or the node address, "
            "DHT layout and every signature diverge across replays"))
    for i, line in enumerate(sf.raw.split("\n"), start=1):
        if DEV_RANDOM_RE.search(line) and \
                not DEV_RANDOM_RE.search(sf.comments.get(i, "")):
            findings.append(Finding(
                sf.path, i, "determinism",
                "/dev/[u]random OS entropy breaks bit-for-bit reproducible "
                "runs; use the seeded util::Rng"))


# --- rule: timer-lifetime ---------------------------------------------------

def find_lambda_capture(args_text: str):
    """Capture list of the first lambda among call arguments, or None.
    A '[' introduces a lambda when preceded (modulo whitespace) by '(' ','
    or the start of the argument list."""
    for i, c in enumerate(args_text):
        if c != "[":
            continue
        j = i - 1
        while j >= 0 and args_text[j] in " \t\n":
            j -= 1
        if j < 0 or args_text[j] in "(,":
            captures, _ = balanced_region(args_text, i, "[", "]")
            return captures
    return None


def capture_analysis(captures: str):
    """Classify a lambda capture list.  Returns (risky, guarded)."""
    risky = False
    guarded = False
    for item in split_top_level(captures):
        item = item.strip()
        if not item:
            continue
        if item in ("this", "*this") or item in ("=", "&"):
            risky = True
        elif item.startswith("&"):
            risky = True
        if GUARD_CAPTURE_RE.search(item):
            guarded = True
    return risky, guarded


def check_timer_lifetime(sf: SourceFile, findings: list):
    text = sf.blanked
    for m in SCHEDULE_CALL_RE.finditer(text):
        prefix = statement_prefix(text, m.start())
        if "=" in prefix or re.search(r"\breturn\b", prefix):
            continue  # cancellation handle retained (or forwarded)
        paren = text.find("(", m.end() - 1)
        args, _ = balanced_region(text, paren, "(", ")")
        if args is None:
            continue
        captures = find_lambda_capture(args)
        if captures is None:
            continue  # non-lambda callback: ownership not visible here
        risky, guarded = capture_analysis(captures)
        if risky and not guarded:
            findings.append(Finding(
                sf.path, line_of_offset(text, m.start()), "timer-lifetime",
                "EventLoop timer lambda captures `this`/by-reference with "
                "the EventId discarded and no weak_ptr/alive guard — the "
                "callback can outlive its owner (UAF class seen twice)"))


# --- rule: shard-affinity ---------------------------------------------------

def sender_mutation_near(span: str, m) -> bool:
    """True when the matched sender-field mention in `span` is a mutation:
    pre/post increment/decrement or a compound/plain assignment target."""
    before = span[:m.start()]
    after = span[m.end():]
    if re.search(r"(\+\+|--)\s*[\w.\->\[\]]*$", before):
        return True
    return bool(re.match(r"\s*(\+\+|--|(?:[+\-*/%|&^]|<<|>>)?=(?!=))", after))


def check_shard_affinity(sf: SourceFile, findings: list):
    if not sf.path.startswith("src/sim/"):
        return
    text = sf.blanked
    for m in SHARD_FOREIGN_SCHED_RE.finditer(text):
        findings.append(Finding(
            sf.path, line_of_offset(text, m.start()), "shard-affinity",
            "direct schedule through another component's loop() — under "
            "sharding that loop may belong to a peer shard; route "
            "cross-shard work through an engine Channel"))
    for m in SHARD_DELIVERY_SPAN_RE.finditer(text):
        opener = text[m.end() - 1]
        closer = ")" if opener == "(" else "}"
        span, _ = balanced_region(text, m.end() - 1, opener, closer)
        if span is None:
            continue
        for fm in SHARD_SENDER_FIELDS_RE.finditer(span):
            if not sender_mutation_near(span, fm):
                continue
            findings.append(Finding(
                sf.path, line_of_offset(text, m.end() + fm.start()),
                "shard-affinity",
                f"delivery callback mutates sender-shard link state "
                f"'{fm.group(1)}' — it executes on the receiver's shard "
                "and races the transmit path; keep sender counters on the "
                "send side of the channel"))


# --- clang engine (optional refinement) -------------------------------------

def try_load_clang():
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    # Bindings importable but the default libclang didn't load: probe the
    # common sonames once (Config may only be set before the first load).
    for name in ("libclang.so", "libclang-18.so", "libclang-17.so",
                 "libclang-16.so", "libclang-15.so", "libclang-14.so.1"):
        try:
            cindex.Config.set_library_file(name)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


def clang_unordered_fors_for_file(cindex, cc_entry, abs_path):
    """Parse one TU and return [(line, spelling, body_first, body_last)]
    for every range-for whose range expression has an unordered_map/set
    canonical type.  Only cursors in the main file are reported."""
    args = [a for a in cc_entry if a not in ("-c", "-o")]
    # Drop the compiler argv[0], the source file and -o targets.
    filtered, skip = [], False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a == abs_path or a.endswith(os.path.basename(abs_path)):
            continue
        if a in ("-o",):
            skip = True
            continue
        filtered.append(a)
    index = cindex.Index.create()
    tu = index.parse(abs_path, args=filtered)
    out = []
    for cur in tu.cursor.walk_preorder():
        if cur.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
            continue
        if not cur.location.file or cur.location.file.name != abs_path:
            continue
        children = list(cur.get_children())
        if len(children) < 2:
            continue
        range_init, body = children[-2], children[-1]
        type_spelling = range_init.type.get_canonical().spelling
        if "unordered_map" not in type_spelling and \
           "unordered_set" not in type_spelling:
            continue
        out.append((cur.location.line,
                    range_init.spelling or type_spelling.split("<")[0],
                    body.extent.start.line, body.extent.end.line))
    return out


# --- driver -----------------------------------------------------------------

def discover_files(build_dir: str, paths):
    """Repo-relative source files to lint.  The compile DB (when present)
    supplies the TU list; headers are globbed (they are not TUs)."""
    if paths:
        rel = []
        for p in paths:
            ap = os.path.abspath(p)
            rel.append(os.path.relpath(ap, REPO_ROOT))
        return sorted(set(rel)), None

    cc_path = os.path.join(build_dir, "compile_commands.json")
    cc_map = {}
    files = set()
    if os.path.exists(cc_path):
        with open(cc_path) as f:
            for entry in json.load(f):
                ap = os.path.abspath(os.path.join(entry["directory"],
                                                  entry["file"]))
                rel = os.path.relpath(ap, REPO_ROOT)
                if rel.startswith("src/"):
                    files.add(rel)
                    if "arguments" in entry:
                        cc_map[rel] = entry["arguments"]
                    elif "command" in entry:
                        cc_map[rel] = entry["command"].split()
    for pat in ("src/**/*.cpp", "src/**/*.hpp"):
        for p in glob.glob(os.path.join(REPO_ROOT, pat), recursive=True):
            files.add(os.path.relpath(p, REPO_ROOT))
    return sorted(files), cc_map or None


def lint_sources(sources, engine, cindex=None, cc_map=None):
    findings: list[Finding] = []
    for sf in sources:
        parse_allow_pragmas(sf, findings)
    unordered_names = collect_unordered_names(sources)

    for sf in sources:
        check_zero_copy(sf, findings)
        clang_fors = None
        if engine == "clang" and cindex is not None and cc_map and \
                sf.path in cc_map:
            try:
                clang_fors = clang_unordered_fors_for_file(
                    cindex, cc_map[sf.path],
                    os.path.join(REPO_ROOT, sf.path))
            except Exception as e:  # fall back per-file, loudly
                print(f"lint: clang parse failed for {sf.path} ({e}); "
                      "using text engine for this file", file=sys.stderr)
        check_determinism(sf, findings, unordered_names, clang_fors)
        check_keygen_entropy(sf, findings)
        check_timer_lifetime(sf, findings)
        check_shard_affinity(sf, findings)

    kept = []
    for f in findings:
        allowed = f.rule in sf_allow(sources, f.path).get(f.line, set())
        if f.rule == "lint-pragma" or not allowed:
            kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def sf_allow(sources, path):
    for sf in sources:
        if sf.path == path:
            return sf.allow
    return {}


# --- self-test --------------------------------------------------------------

def run_self_test(engine, cindex):
    fixture_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "fixtures")
    fixture_paths = sorted(glob.glob(os.path.join(fixture_dir, "*.cpp")))
    if not fixture_paths:
        print("lint --self-test: no fixtures found", file=sys.stderr)
        return 2

    sources = []
    expected = {}  # (fixture_path, line) -> rule
    for p in fixture_paths:
        with open(p) as f:
            raw = f.read()
        m = FIXTURE_PATH_RE.search(raw)
        if not m:
            print(f"lint --self-test: {p} lacks a lint-fixture-path header",
                  file=sys.stderr)
            return 2
        pretend = m.group(1)
        sf = SourceFile(path=pretend, raw=raw)
        sf.blanked, sf.comments = blank_comments_and_strings(raw)
        sources.append(sf)
        for i, line in enumerate(raw.split("\n"), start=1):
            for em in EXPECT_RE.finditer(line):
                expected[(pretend, i, em.group(1))] = False

    # Fixtures have no compile DB entries: the clang engine exercises its
    # text fallback for range-for, which the repo gate also relies on for
    # headers.  Banned-call / zero-copy / timer rules are engine-shared.
    findings = lint_sources(sources, "text")

    failures = []
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key in expected:
            expected[key] = True
        else:
            failures.append(f"unexpected finding: {f.format()}")
    for (path, line, rule), hit in sorted(expected.items()):
        if not hit:
            failures.append(f"rule did not fire: {path}:{line} expected "
                            f"[{rule}]")

    fired_rules = {rule for (_, _, rule), hit in expected.items() if hit}
    for rule in RULES:
        if rule not in fired_rules:
            failures.append(f"self-test has no passing expectation for "
                            f"rule family [{rule}]")

    if failures:
        print("lint --self-test FAILED:", file=sys.stderr)
        for msg in failures:
            print("  " + msg, file=sys.stderr)
        return 1
    print(f"lint --self-test OK: {len(expected)} expectations across "
          f"{len(fixture_paths)} fixtures, all {len(RULES)} rule families "
          f"fire and the allow pragma suppresses.")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                    help="build tree holding compile_commands.json")
    ap.add_argument("--engine", choices=("auto", "clang", "text"),
                    default="auto")
    ap.add_argument("--json", dest="json_out",
                    help="also write findings as JSON to this path")
    ap.add_argument("--self-test", action="store_true",
                    help="assert each rule fires on the committed fixtures")
    ap.add_argument("paths", nargs="*",
                    help="specific files to lint (default: src/ via "
                         "compile_commands.json + header glob)")
    opts = ap.parse_args(argv)

    cindex = None
    engine = opts.engine
    if engine in ("auto", "clang"):
        cindex = try_load_clang()
        if cindex is None:
            if engine == "clang":
                print("lint: --engine clang requested but clang.cindex / "
                      "libclang is unavailable", file=sys.stderr)
                return 2
            engine = "text"
        else:
            engine = "clang"

    if opts.self_test:
        return run_self_test(engine, cindex)

    files, cc_map = discover_files(opts.build_dir, opts.paths)
    if not files:
        print("lint: no source files found", file=sys.stderr)
        return 2
    sources = []
    for rel in files:
        ap_path = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(ap_path):
            continue
        sources.append(load_source(ap_path, rel))

    findings = lint_sources(sources, engine, cindex, cc_map)

    if opts.json_out:
        with open(opts.json_out, "w") as f:
            json.dump([f_.__dict__ for f_ in findings], f, indent=2)

    for f in findings:
        print(f.format())
    n_allowed = sum(len(v) for sf in sources for v in sf.allow.values())
    print(f"lint: {len(findings)} finding(s) across {len(sources)} files "
          f"({n_allowed} allowlisted) [engine: {engine}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
