#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors: the exact gate CI runs, usable
# locally before pushing.
#
#   tools/check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-check}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" -DIPOP_WERROR=ON
cmake --build "${build_dir}" -j "${jobs}"
# JUnit XML lands next to the binaries so CI can upload it per matrix leg.
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
      --output-junit junit.xml
