#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors: the exact gate CI runs, usable
# locally before pushing.
#
#   tools/check.sh [--lint] [build-dir]
#
# --lint additionally runs the invariant lint pass (tools/lint/run.py):
# first its self-test over the committed bad fixtures, then the repo gate
# against the build tree's compile_commands.json.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
run_lint=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --lint) run_lint=1 ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-${repo_root}/build-check}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" -DIPOP_WERROR=ON
cmake --build "${build_dir}" -j "${jobs}"
# JUnit XML lands next to the binaries so CI can upload it per matrix leg.
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
      --output-junit junit.xml

if [ "${run_lint}" = "1" ]; then
  python3 "${repo_root}/tools/lint/run.py" --self-test
  python3 "${repo_root}/tools/lint/run.py" --build-dir "${build_dir}"
fi
